// Package shard implements the scale-out coordinator for geostat's
// distributed tile execution (ROADMAP item 1): it splits a KDV raster
// into pixel-window tiles with halo-replicated point subsets (and a
// K-function plot into distance-band batches), places the per-tile
// datasets on geostatd workers with a consistent-hash ring, fans the work
// out over the workers' HTTP API with per-tile timeouts, bounded retries
// and replica failover, and merges the partial results into output that
// is bit-identical to a single-node run.
//
// The exactness argument (see DESIGN.md "Sharded execution"):
//
//   - KDV tiles request windowed (tile=) naive evaluation over the FULL
//     grid spec, so workers compute the same pixel-center coordinates the
//     single-node run does.
//   - Each tile's point subset is the halo filter — every point within
//     the kernel's support radius of the tile's pixel box. Finite-support
//     kernels map all other points to exactly 0, and the naive evaluator
//     skips zero terms rather than adding them, so the subset sum equals
//     the full sum, bit for bit. Order is preserved by the filter, fixing
//     the IEEE accumulation order.
//   - K-function band counts are integers and the Monte-Carlo envelope
//     draws each simulation's pattern from (seed, sim index) independent
//     of the band list, so any band partition merges exactly.
//
// Concurrency and cleanup obey the repo's obligation gates: fan-out runs
// through internal/parallel (no raw goroutines), every per-attempt
// context is cancelled on all paths, and every response body is closed
// including retry and failure paths.
package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/obs"
	"geostat/internal/parallel"
	"geostat/internal/raster"
)

// Config configures a Coordinator.
type Config struct {
	// Workers is the worker base URL list ("http://host:port"). Required.
	Workers []string
	// Replication is how many distinct workers own each dataset (and can
	// serve its tiles); failover walks this replica set. Clamped to the
	// worker count; <= 0 means 2.
	Replication int
	// Retries is how many additional attempts a failed tile gets beyond
	// the first; < 0 means 0. Attempts rotate through the replica set.
	Retries int
	// Backoff is the base retry delay, doubling per attempt; <= 0 means
	// 50ms. The wait honours the run context.
	Backoff time.Duration
	// Timeout bounds each worker attempt (ensure + compute); <= 0 means
	// 30s.
	Timeout time.Duration
	// Concurrency caps in-flight tiles; <= 0 means 2 per worker.
	Concurrency int
	// Vnodes is the ring's virtual node count per worker; <= 0 means 64.
	Vnodes int
	// Client is the HTTP client; nil means http.DefaultClient. Tests
	// inject httptest clients here.
	Client *http.Client
	// Metrics receives the shard_* metrics; nil creates a private
	// registry (exposed via Coordinator.Metrics).
	Metrics *obs.Registry
}

// Coordinator fans sharded computations out over a fixed worker set. It
// is safe for concurrent use; the ensured-placement cache carries over
// between runs, so repeated computations over the same dataset skip
// re-uploading tiles.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	client  *http.Client
	metrics *obs.Registry

	mTiles     *obs.Counter
	mBands     *obs.Counter
	mRetries   *obs.Counter
	mFailovers *obs.Counter
	mUploads   *obs.Counter
	gInflight  *obs.Gauge

	mu      sync.Mutex
	ensured map[string]bool // "worker|dataset" the worker is known to hold
}

// New validates cfg and returns a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	ring, err := NewRing(cfg.Workers, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2 * len(cfg.Workers)
	}
	c := &Coordinator{
		cfg:     cfg,
		ring:    ring,
		client:  cfg.Client,
		metrics: cfg.Metrics,
		ensured: make(map[string]bool),
	}
	if c.client == nil {
		c.client = http.DefaultClient
	}
	if c.metrics == nil {
		c.metrics = obs.NewRegistry()
	}
	c.mTiles = c.metrics.Counter("shard_tiles_total", "KDV tiles merged into sharded results")
	c.mBands = c.metrics.Counter("shard_bands_total", "K-function bands merged into sharded results")
	c.mRetries = c.metrics.Counter("shard_retries_total", "tile attempts beyond the first")
	c.mFailovers = c.metrics.Counter("shard_failovers_total", "tile attempts moved to a different replica")
	c.mUploads = c.metrics.Counter("shard_uploads_total", "dataset uploads pushed to workers")
	c.gInflight = c.metrics.Gauge("shard_tiles_inflight", "tile requests executing now")
	return c, nil
}

// Metrics returns the coordinator's metric registry.
func (c *Coordinator) Metrics() *obs.Registry { return c.metrics }

// KDV runs one sharded KDV computation and returns the merged full-extent
// raster, bit-identical to the equivalent single-node naive evaluation.
func (c *Coordinator) KDV(ctx context.Context, d *dataset.Dataset, name string, req KDVRequest) (*raster.Grid, error) {
	ctx, span := obs.Trace(ctx, "shard.kdv")
	defer span.End()
	_, plspan := obs.Trace(ctx, "shard.plan")
	plan, err := PlanKDV(d, name, req)
	plspan.End()
	if err != nil {
		return nil, err
	}
	span.SetAttrInt("tiles", int64(len(plan.Tiles)))

	parts := make([][]float64, len(plan.Tiles))
	err = c.dispatch(ctx, len(plan.Tiles), func(tctx context.Context, i int) error {
		t := &plan.Tiles[i]
		if t.Empty() {
			return nil // zero-filled in the merge; workers reject empty datasets
		}
		vals, terr := c.computeTile(tctx, plan, t)
		if terr != nil {
			return fmt.Errorf("tile %d (%s): %w", t.ID, t.Dataset, terr)
		}
		parts[i] = vals
		return nil
	})
	if err != nil {
		return nil, err
	}

	_, mspan := obs.Trace(ctx, "shard.merge")
	defer mspan.End()
	out := raster.NewGrid(req.Grid)
	for i := range plan.Tiles {
		t := &plan.Tiles[i]
		if !t.Empty() {
			mergeWindow(out, t.Window, parts[i])
		}
	}
	if req.Normalize {
		// Same scale expression and elementwise multiply as the
		// single-node run: NormConst/n over the FULL point count.
		scale := req.Kernel.NormConst() / float64(plan.N)
		for i := range out.Values {
			out.Values[i] *= scale
		}
	}
	return out, nil
}

// mergeWindow copies a tile raster into its window of the full raster,
// row by row. Copies are placement only — no arithmetic — so completion
// order cannot affect the merged bits.
func mergeWindow(out *raster.Grid, w geom.GridWindow, vals []float64) {
	nx := out.Spec.NX
	for iy := 0; iy < w.NY; iy++ {
		dst := (w.Y0+iy)*nx + w.X0
		copy(out.Values[dst:dst+w.NX], vals[iy*w.NX:(iy+1)*w.NX])
	}
}

// computeTile runs one tile to completion: ensure placement on the
// attempt's worker, fetch the windowed raster, validate its shape.
func (c *Coordinator) computeTile(ctx context.Context, plan *KDVPlan, t *Tile) ([]float64, error) {
	ctx, span := obs.Trace(ctx, "shard.tile")
	defer span.End()
	span.SetAttrInt("tile", int64(t.ID))
	span.SetAttrInt("points", int64(t.n))
	c.gInflight.Add(1)
	defer c.gInflight.Add(-1)

	var vals []float64
	err := c.withRetry(ctx, t.Dataset, func(actx context.Context, worker string) error {
		if err := c.ensure(actx, worker, t.Dataset, t.Digest, t.csv); err != nil {
			return err
		}
		var resp heatmapResponse
		if err := c.getJSON(actx, worker, "/v1/kdv", plan.tileQuery(t), &resp); err != nil {
			c.forgetIfLost(err, worker, t.Dataset)
			return err
		}
		if resp.Width != t.Window.NX || resp.Height != t.Window.NY ||
			len(resp.Values) != t.Window.NX*t.Window.NY {
			return fmt.Errorf("shard: corrupt tile payload: %dx%d with %d values, want %dx%d",
				resp.Width, resp.Height, len(resp.Values), t.Window.NX, t.Window.NY)
		}
		vals = resp.Values
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.mTiles.Inc()
	return vals, nil
}

// KFuncResult is a merged sharded K-function plot, field-for-field the
// single-node serve payload.
type KFuncResult struct {
	S, K, Lo, Hi []float64
	Sims         int
	Regimes      []string
}

// KFunction runs one sharded K-function computation and returns the
// merged plot, bit-identical to the single-node evaluation of the full
// threshold list.
func (c *Coordinator) KFunction(ctx context.Context, d *dataset.Dataset, name string, req KFuncRequest) (*KFuncResult, error) {
	ctx, span := obs.Trace(ctx, "shard.kfunction")
	defer span.End()
	plan, err := PlanKFunc(d, name, req)
	if err != nil {
		return nil, err
	}
	span.SetAttrInt("batches", int64(len(plan.Batches)))

	n := len(req.Thresholds)
	res := &KFuncResult{
		S: make([]float64, n), K: make([]float64, n),
		Lo: make([]float64, n), Hi: make([]float64, n),
		Sims: req.Sims, Regimes: make([]string, n),
	}
	err = c.dispatch(ctx, len(plan.Batches), func(bctx context.Context, i int) error {
		b := &plan.Batches[i]
		if berr := c.computeBands(bctx, plan, b, res); berr != nil {
			return fmt.Errorf("bands [%d,%d): %w", b.Lo, b.Hi, berr)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// computeBands runs one threshold batch and writes its slice of the
// result in place (batches never overlap).
func (c *Coordinator) computeBands(ctx context.Context, plan *KFuncPlan, b *Batch, res *KFuncResult) error {
	ctx, span := obs.Trace(ctx, "shard.bands")
	defer span.End()
	span.SetAttrInt("batch", int64(b.ID))
	c.gInflight.Add(1)
	defer c.gInflight.Add(-1)

	err := c.withRetry(ctx, plan.Dataset, func(actx context.Context, worker string) error {
		if err := c.ensure(actx, worker, plan.Dataset, plan.Digest, plan.csv); err != nil {
			return err
		}
		var resp kfuncResponse
		if err := c.getJSON(actx, worker, "/v1/kfunction", plan.batchQuery(b), &resp); err != nil {
			c.forgetIfLost(err, worker, plan.Dataset)
			return err
		}
		want := b.Hi - b.Lo
		if len(resp.S) != want || len(resp.K) != want || len(resp.Lo) != want ||
			len(resp.Hi) != want || len(resp.Regimes) != want {
			return fmt.Errorf("shard: corrupt band payload: %d/%d/%d/%d/%d entries, want %d",
				len(resp.S), len(resp.K), len(resp.Lo), len(resp.Hi), len(resp.Regimes), want)
		}
		copy(res.S[b.Lo:b.Hi], resp.S)
		copy(res.K[b.Lo:b.Hi], resp.K)
		copy(res.Lo[b.Lo:b.Hi], resp.Lo)
		copy(res.Hi[b.Lo:b.Hi], resp.Hi)
		copy(res.Regimes[b.Lo:b.Hi], resp.Regimes)
		return nil
	})
	if err != nil {
		return err
	}
	c.mBands.Add(int64(b.Hi - b.Lo))
	return nil
}

// dispatch fans n jobs out with the configured concurrency. The first
// job error cancels the run context shared by every other job (leader
// cancel), and that first error is returned. A nil error means every job
// completed.
func (c *Coordinator) dispatch(ctx context.Context, n int, job func(ctx context.Context, i int) error) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		once     sync.Once
		firstErr error
	)
	// When the leader cancel fires, ForCtx returns runCtx's error; the
	// job error captured below is the meaningful one to surface.
	ferr := parallel.ForCtx(runCtx, n, c.cfg.Concurrency, func(i int) {
		if runCtx.Err() != nil {
			return // leader already cancelled; don't start new work
		}
		if err := job(runCtx, i); err != nil {
			once.Do(func() {
				firstErr = err
				cancel()
			})
		}
	})
	if firstErr != nil {
		return firstErr
	}
	return ferr
}

// withRetry runs fn against the dataset's replica set with per-attempt
// timeouts, exponential backoff and failover: attempt k goes to replica
// k mod len(owners). Non-retryable errors (validation 4xx, context
// cancellation) abort immediately.
func (c *Coordinator) withRetry(ctx context.Context, key string, fn func(ctx context.Context, worker string) error) error {
	owners := c.ring.Owners(key, c.cfg.Replication)
	attempts := c.cfg.Retries + 1
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.mRetries.Inc()
			if err := sleepCtx(ctx, c.cfg.Backoff<<(a-1)); err != nil {
				return lastErr
			}
		}
		worker := owners[a%len(owners)]
		if a > 0 && worker != owners[(a-1)%len(owners)] {
			c.mFailovers.Inc()
		}
		err := func() error {
			// The attempt context is cancelled on every path: normal
			// return, error return, and panic unwind.
			actx, acancel := context.WithTimeout(ctx, c.cfg.Timeout)
			defer acancel()
			return fn(actx, worker)
		}()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The run was cancelled (leader cancel or caller): report the
			// cancellation, not the attempt's collateral failure.
			return ctx.Err()
		}
		if !retryable(err) {
			return fmt.Errorf("%s: %w", worker, err)
		}
		lastErr = fmt.Errorf("%s: %w", worker, err)
	}
	return fmt.Errorf("failed after %d attempts: %w", attempts, lastErr)
}

// ensure makes worker hold the named dataset with the expected digest:
// a cache hit is trusted; otherwise the worker's digest endpoint decides
// whether to upload. A digest mismatch after upload is corrupt transport.
func (c *Coordinator) ensure(ctx context.Context, worker, name, digest string, csv []byte) error {
	ckey := worker + "|" + name
	c.mu.Lock()
	ok := c.ensured[ckey]
	c.mu.Unlock()
	if ok {
		return nil
	}
	ctx, span := obs.Trace(ctx, "shard.ensure")
	defer span.End()

	var info digestInfo
	err := c.getJSON(ctx, worker, "/v1/datasets/"+name+"/digest", nil, &info)
	if err == nil && info.Digest == digest {
		c.markEnsured(ckey)
		return nil
	}
	var he *httpError
	if err != nil && !(errors.As(err, &he) && he.status == http.StatusNotFound) {
		return err
	}
	// Unknown name or stale content: upload and verify.
	if uerr := c.postCSV(ctx, worker, name, csv); uerr != nil {
		return uerr
	}
	c.mUploads.Inc()
	if gerr := c.getJSON(ctx, worker, "/v1/datasets/"+name+"/digest", nil, &info); gerr != nil {
		return gerr
	}
	if info.Digest != digest {
		return fmt.Errorf("shard: dataset %s on %s has digest %.12s after upload, want %.12s",
			name, worker, info.Digest, digest)
	}
	c.markEnsured(ckey)
	return nil
}

func (c *Coordinator) markEnsured(key string) {
	c.mu.Lock()
	c.ensured[key] = true
	c.mu.Unlock()
}

// forgetIfLost drops the placement cache entry when a compute 404s — the
// worker lost its datasets (restart) and the next attempt must re-ensure.
func (c *Coordinator) forgetIfLost(err error, worker, name string) {
	var he *httpError
	if errors.As(err, &he) && he.status == http.StatusNotFound {
		c.mu.Lock()
		delete(c.ensured, worker+"|"+name)
		c.mu.Unlock()
	}
}

// sleepCtx waits d, returning early with ctx.Err() when the run is
// cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
