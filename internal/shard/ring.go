package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over worker base URLs. Each worker owns
// vnodes points on a uint64 circle (FNV-64a of "worker#vnode"); a dataset
// key maps to the first point clockwise of its own hash, and replicas are
// the next distinct workers clockwise. Placement therefore depends only on
// the worker set and the key — every coordinator run (and every retry)
// derives the same owners, which is what lets re-runs reuse datasets
// already uploaded to workers.
type Ring struct {
	points  []ringPoint // sorted by hash
	workers int
}

type ringPoint struct {
	hash   uint64
	worker string
}

// NewRing builds a ring over the worker base URLs with vnodes virtual
// nodes per worker (vnodes <= 0 selects the default of 64).
func NewRing(workers []string, vnodes int) (*Ring, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("shard: no workers")
	}
	seen := make(map[string]bool, len(workers))
	for _, w := range workers {
		if w == "" {
			return nil, fmt.Errorf("shard: empty worker address")
		}
		if seen[w] {
			return nil, fmt.Errorf("shard: duplicate worker %q", w)
		}
		seen[w] = true
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{
		points:  make([]ringPoint, 0, len(workers)*vnodes),
		workers: len(workers),
	}
	for _, w := range workers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashKey(w + "#" + strconv.Itoa(v)),
				worker: w,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on worker so the order is deterministic even in the
		// (astronomically unlikely) event of a 64-bit hash collision.
		return r.points[i].worker < r.points[j].worker
	})
	return r, nil
}

// Owners returns the n distinct workers responsible for key, primary
// first, walking clockwise from the key's hash. n is clamped to the
// worker count; the result is never empty.
func (r *Ring) Owners(key string, n int) []string {
	if n < 1 {
		n = 1
	}
	if n > r.workers {
		n = r.workers
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			owners = append(owners, p.worker)
		}
	}
	return owners
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	// Raw FNV-1a of short, similar strings (sequential vnode suffixes,
	// dataset.tN tile names) clusters on the circle badly enough that one
	// worker can own almost every key; a splitmix64 finalizer restores
	// uniform spread while staying fully deterministic.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
