package shard

import (
	"fmt"
	"testing"
)

func testWorkers(n int) []string {
	ws := make([]string, n)
	for i := range ws {
		ws[i] = fmt.Sprintf("http://worker-%d:8090", i)
	}
	return ws
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Error("empty worker list accepted")
	}
	if _, err := NewRing([]string{"http://a", ""}, 64); err == nil {
		t.Error("empty worker address accepted")
	}
	if _, err := NewRing([]string{"http://a", "http://a"}, 64); err == nil {
		t.Error("duplicate worker accepted")
	}
}

// TestRingDeterministic is the placement contract: owners depend only on
// the worker set and the key — not on insertion order, not on the run.
func TestRingDeterministic(t *testing.T) {
	ws := testWorkers(5)
	a, err := NewRing(ws, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Same set, reversed insertion order.
	rev := make([]string, len(ws))
	for i, w := range ws {
		rev[len(ws)-1-i] = w
	}
	b, err := NewRing(rev, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("dataset.%d.t%d", i, i%7)
		oa := a.Owners(key, 3)
		ob := b.Owners(key, 3)
		if len(oa) != 3 || len(ob) != 3 {
			t.Fatalf("key %q: %d/%d owners, want 3", key, len(oa), len(ob))
		}
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("key %q: owner %d differs across insertion orders: %s vs %s",
					key, j, oa[j], ob[j])
			}
		}
	}
}

func TestRingOwnersDistinctAndClamped(t *testing.T) {
	r, err := NewRing(testWorkers(3), 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		owners := r.Owners(key, 10) // more replicas than workers
		if len(owners) != 3 {
			t.Fatalf("key %q: %d owners, want clamp to 3", key, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner %s", key, o)
			}
			seen[o] = true
		}
		// n<1 clamps up to 1 and the primary matches the n=10 walk.
		if one := r.Owners(key, 0); len(one) != 1 || one[0] != owners[0] {
			t.Fatalf("key %q: primary unstable: %v vs %v", key, one, owners)
		}
	}
}

// TestRingSpreads checks the vnode count actually distributes load: over
// enough keys every worker must be primary for some of them.
func TestRingSpreads(t *testing.T) {
	ws := testWorkers(4)
	r, err := NewRing(ws, 64)
	if err != nil {
		t.Fatal(err)
	}
	primaries := map[string]int{}
	for i := 0; i < 1000; i++ {
		primaries[r.Owners(fmt.Sprintf("d%d", i), 1)[0]]++
	}
	for _, w := range ws {
		if primaries[w] == 0 {
			t.Errorf("worker %s is primary for no keys", w)
		}
	}
}
