package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// maxRespBytes caps worker response bodies (largest legal tile: 4096² of
// ~25-byte JSON floats is well under this).
const maxRespBytes = 1 << 30

// httpError is a non-2xx worker response. Retryability is decided by
// status: overload (503), budget overruns (504) and server faults (5xx)
// are worth another attempt — possibly on a replica — while validation
// errors (4xx) will fail identically everywhere. 404 is the exception: it
// means the worker lost the dataset (restart), which re-ensuring fixes.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("worker returned %d: %s", e.status, e.msg)
}

// retryable reports whether another attempt (after re-ensuring placement,
// possibly on the next replica) could succeed. Context cancellation is
// never retryable — the run is over.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) {
		return false
	}
	var he *httpError
	if errors.As(err, &he) {
		switch {
		case he.status >= 500:
			return true
		case he.status == http.StatusNotFound, he.status == http.StatusRequestTimeout,
			he.status == http.StatusTooManyRequests:
			return true
		default:
			return false
		}
	}
	// Transport errors (connection refused/reset, mid-body drops, corrupt
	// payloads, per-attempt timeouts) are all retryable.
	return true
}

// errorBody extracts the {"error": ...} payload of a failed response,
// falling back to the raw body.
func errorBody(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	if len(body) > 200 {
		body = body[:200]
	}
	return string(body)
}

// getJSON performs a GET against a worker and decodes the JSON response.
func (c *Coordinator) getJSON(ctx context.Context, worker, path string, query url.Values, out any) error {
	u := worker + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxRespBytes))
	if err != nil {
		return fmt.Errorf("shard: read %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return &httpError{status: resp.StatusCode, msg: errorBody(body)}
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("shard: corrupt %s payload: %w", path, err)
	}
	return nil
}

// postCSV uploads a CSV-encoded dataset to a worker.
func (c *Coordinator) postCSV(ctx context.Context, worker, name string, csv []byte) error {
	u := worker + "/v1/datasets/" + url.PathEscape(name)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(csv))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxRespBytes))
	if err != nil {
		return fmt.Errorf("shard: read upload response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return &httpError{status: resp.StatusCode, msg: errorBody(body)}
	}
	return nil
}

// digestInfo is the worker's GET /v1/datasets/{name}/digest payload.
type digestInfo struct {
	Name    string `json:"name"`
	N       int    `json:"n"`
	Version uint64 `json:"version"`
	Digest  string `json:"digest"`
}

// heatmapResponse is the worker's KDV JSON payload.
type heatmapResponse struct {
	Dataset string    `json:"dataset"`
	Method  string    `json:"method"`
	Width   int       `json:"width"`
	Height  int       `json:"height"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Sum     float64   `json:"sum"`
	Values  []float64 `json:"values"`
}

// kfuncResponse is the worker's K-function JSON payload.
type kfuncResponse struct {
	Dataset string    `json:"dataset"`
	S       []float64 `json:"s"`
	K       []float64 `json:"k"`
	Lo      []float64 `json:"lo"`
	Hi      []float64 `json:"hi"`
	Sims    int       `json:"sims"`
	Regimes []string  `json:"regimes"`
}
