// Package shardtest is the fault-injection worker harness for the shard
// coordinator's integration tests: a real serve.Server behind an
// httptest listener, with a scriptable fault layer in front that can
// delay requests, hang until the client gives up, return error statuses,
// drop the connection mid-body, or serve corrupt payloads — per tool,
// per tile, a bounded number of times.
package shardtest

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"geostat/internal/serve"
)

// Rule scripts one fault. Zero-valued match fields match everything; the
// first matching rule applies. Exactly one fault field should be set.
type Rule struct {
	// Tool matches the request kind: "kdv", "kfunction", "digest",
	// "upload"; "" matches any.
	Tool string
	// Tile matches the tile= query parameter verbatim ("" matches any).
	Tile string
	// Times bounds how often the rule fires; 0 means unlimited.
	Times int

	// Delay sleeps before forwarding to the real server.
	Delay time.Duration
	// Hang blocks until the client abandons the request (context
	// cancellation closes the connection), then returns without a body.
	Hang bool
	// Status short-circuits with this HTTP status and a JSON error body.
	Status int
	// DropMidBody writes a partial tile payload and then severs the
	// connection, exercising the coordinator's truncated-read path.
	DropMidBody bool
	// Corrupt serves a well-formed HTTP 200 whose JSON payload is garbage
	// (wrong shape), exercising the coordinator's payload validation.
	Corrupt bool
}

// Worker is one fake geostatd: a real serving stack plus the fault layer.
type Worker struct {
	Server *serve.Server
	HTTP   *httptest.Server

	mu    sync.Mutex
	rules []*Rule
	hits  map[string]int // fault kind → count, for test assertions
}

// NewWorker boots a worker with its own serve.Server. The listener is
// closed by t.Cleanup.
func NewWorker(t testing.TB, cfg serve.Config) *Worker {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	w := &Worker{
		Server: serve.NewServer(cfg),
		hits:   make(map[string]int),
	}
	w.HTTP = httptest.NewServer(w)
	t.Cleanup(w.HTTP.Close)
	return w
}

// URL returns the worker's base URL.
func (w *Worker) URL() string { return w.HTTP.URL }

// Script appends a fault rule.
func (w *Worker) Script(r Rule) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rc := r
	w.rules = append(w.rules, &rc)
}

// Hits returns how many times faults of the given kind fired
// ("delay", "hang", "status", "drop", "corrupt").
func (w *Worker) Hits(kind string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hits[kind]
}

// tool classifies a request the way Rule.Tool names it.
func tool(r *http.Request) string {
	switch {
	case strings.HasPrefix(r.URL.Path, "/v1/kdv"):
		return "kdv"
	case strings.HasPrefix(r.URL.Path, "/v1/kfunction"):
		return "kfunction"
	case strings.HasSuffix(r.URL.Path, "/digest"):
		return "digest"
	case r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/datasets/"):
		return "upload"
	}
	return ""
}

// match pops the first applicable rule (decrementing its budget).
func (w *Worker) match(r *http.Request) *Rule {
	w.mu.Lock()
	defer w.mu.Unlock()
	rt := tool(r)
	tile := r.URL.Query().Get("tile")
	for i, rule := range w.rules {
		if rule.Tool != "" && rule.Tool != rt {
			continue
		}
		if rule.Tile != "" && rule.Tile != tile {
			continue
		}
		if rule.Times > 0 {
			rule.Times--
			if rule.Times == 0 {
				w.rules = append(w.rules[:i], w.rules[i+1:]...)
			}
		}
		w.hits[kind(rule)]++
		return rule
	}
	return nil
}

func kind(r *Rule) string {
	switch {
	case r.Hang:
		return "hang"
	case r.Status != 0:
		return "status"
	case r.DropMidBody:
		return "drop"
	case r.Corrupt:
		return "corrupt"
	}
	return "delay"
}

// ServeHTTP applies the first matching fault, then forwards to the real
// server.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	rule := w.match(r)
	if rule == nil {
		w.Server.ServeHTTP(rw, r)
		return
	}
	switch {
	case rule.Hang:
		<-r.Context().Done()
		return
	case rule.Status != 0:
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(rule.Status)
		_, _ = rw.Write([]byte(`{"error":"injected fault"}`))
		return
	case rule.DropMidBody:
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusOK)
		_, _ = rw.Write([]byte(`{"dataset":"x","width":4096,"height":4096,"values":[1.0,2.0`))
		if f, ok := rw.(http.Flusher); ok {
			f.Flush()
		}
		// ErrAbortHandler severs the connection without a terminating
		// chunk — the client sees an unexpected EOF mid-body.
		panic(http.ErrAbortHandler)
	case rule.Corrupt:
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusOK)
		// Shape never matches any real tile or band batch: the value
		// count disagrees with the claimed dimensions.
		_, _ = rw.Write([]byte(`{"width":2,"height":2,"values":[0.25],"s":[1],"k":[]}`))
		return
	}
	if rule.Delay > 0 {
		select {
		case <-time.After(rule.Delay):
		case <-r.Context().Done():
			return
		}
	}
	w.Server.ServeHTTP(rw, r)
}
