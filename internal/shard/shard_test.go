package shard_test

import (
	"context"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/kde"
	"geostat/internal/kernel"
	"geostat/internal/kfunc"
	"geostat/internal/parallel"
	"geostat/internal/serve"
	"geostat/internal/shard"
	"geostat/internal/shard/shardtest"
)

var box = geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 80}

func testData(seed int64, n int) *dataset.Dataset {
	r := rand.New(rand.NewSource(seed))
	return dataset.GaussianClusters(r, n, box, []dataset.Cluster{
		{Center: geom.Point{X: 30, Y: 40}, Sigma: 8, Weight: 2},
		{Center: geom.Point{X: 75, Y: 20}, Sigma: 5, Weight: 1},
	}, 0.2)
}

// cluster boots n fault-injectable workers and a coordinator over them.
func cluster(t *testing.T, n int, cfg shard.Config) (*shard.Coordinator, []*shardtest.Worker, *http.Client) {
	t.Helper()
	workers := make([]*shardtest.Worker, n)
	for i := range workers {
		workers[i] = shardtest.NewWorker(t, serve.Config{Workers: 2})
		cfg.Workers = append(cfg.Workers, workers[i].URL())
	}
	client := &http.Client{}
	t.Cleanup(client.CloseIdleConnections)
	cfg.Client = client
	c, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, workers, client
}

func kdvReq(k kernel.Kernel, tx, ty int) shard.KDVRequest {
	return shard.KDVRequest{
		Kernel: k,
		Grid:   geom.NewPixelGrid(box, 16, 12),
		TilesX: tx, TilesY: ty,
	}
}

// singleNode computes the reference raster the sharded run must reproduce.
func singleNode(t *testing.T, d *dataset.Dataset, req shard.KDVRequest) []float64 {
	t.Helper()
	g, err := kde.NaiveCols(d.Columns(), kde.Options{
		Kernel: req.Kernel, Grid: req.Grid, Normalize: req.Normalize,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g.Values
}

func assertBitIdentical(t *testing.T, want, got []float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: pixel %d: %x != %x (%g vs %g)",
				label, i, math.Float64bits(got[i]), math.Float64bits(want[i]), got[i], want[i])
		}
	}
}

func TestShardedKDVBitIdenticalAcrossWorkers(t *testing.T) {
	d := testData(5, 300)
	req := kdvReq(kernel.MustNew(kernel.Quartic, 9), 3, 2)
	want := singleNode(t, d, req)

	c, _, _ := cluster(t, 2, shard.Config{Replication: 2})
	got, err := c.KDV(context.Background(), d, "ev", req)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, want, got.Values, "sharded 3x2")

	// Normalized surfaces must match too (post-merge scaling).
	nreq := req
	nreq.Normalize = true
	want = singleNode(t, d, nreq)
	gotN, err := c.KDV(context.Background(), d, "ev", nreq)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, want, gotN.Values, "sharded normalized")
}

func TestShardedKFunctionBitIdentical(t *testing.T) {
	d := testData(7, 200)
	thresholds := []float64{5, 10, 15, 20, 25, 30}
	req := shard.KFuncRequest{Thresholds: thresholds, Sims: 5, Seed: 11, Bands: 2}

	// The single-node reference is exactly what one geostatd computes.
	plot, err := kfunc.MakePlot(d.Points(), kfunc.PlotOptions{
		Thresholds: thresholds, Simulations: 5,
	}, parallel.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}

	c, _, _ := cluster(t, 2, shard.Config{Replication: 2})
	got, err := c.KFunction(context.Background(), d, "ev", req)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, plot.S, got.S, "s")
	assertBitIdentical(t, plot.K, got.K, "k")
	assertBitIdentical(t, plot.Lo, got.Lo, "lo")
	assertBitIdentical(t, plot.Hi, got.Hi, "hi")
}

func TestRetryOn503(t *testing.T) {
	d := testData(5, 200)
	req := kdvReq(kernel.MustNew(kernel.Quartic, 9), 2, 2)
	want := singleNode(t, d, req)

	c, workers, _ := cluster(t, 2, shard.Config{
		Replication: 2, Retries: 3, Backoff: time.Millisecond,
	})
	for _, w := range workers {
		w.Script(shardtest.Rule{Tool: "kdv", Times: 1, Status: http.StatusServiceUnavailable})
	}
	got, err := c.KDV(context.Background(), d, "ev", req)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, want, got.Values, "after 503 retries")
	if workers[0].Hits("status")+workers[1].Hits("status") == 0 {
		t.Fatal("no injected 503 actually fired")
	}
}

func TestRetryOnDroppedConnectionAndCorruptPayload(t *testing.T) {
	d := testData(5, 200)
	req := kdvReq(kernel.MustNew(kernel.Epanechnikov, 11), 2, 2)
	want := singleNode(t, d, req)

	c, workers, _ := cluster(t, 2, shard.Config{
		Replication: 2, Retries: 3, Backoff: time.Millisecond,
	})
	workers[0].Script(shardtest.Rule{Tool: "kdv", Times: 1, DropMidBody: true})
	workers[1].Script(shardtest.Rule{Tool: "kdv", Times: 1, Corrupt: true})
	got, err := c.KDV(context.Background(), d, "ev", req)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, want, got.Values, "after drop+corrupt retries")
	if workers[0].Hits("drop") == 0 && workers[1].Hits("corrupt") == 0 {
		t.Fatal("no fault actually fired")
	}
}

func TestDeadWorkerDegradesNotWedges(t *testing.T) {
	d := testData(5, 200)
	req := kdvReq(kernel.MustNew(kernel.Quartic, 9), 3, 3)
	want := singleNode(t, d, req)

	c, workers, _ := cluster(t, 2, shard.Config{
		Replication: 2, Retries: 2, Backoff: time.Millisecond,
		Timeout: 5 * time.Second,
	})
	// Kill one worker outright: every tile it owned must fail over to the
	// surviving replica and the run must still complete exactly.
	workers[0].HTTP.Close()
	start := time.Now()
	got, err := c.KDV(context.Background(), d, "ev", req)
	if err != nil {
		t.Fatalf("run did not survive a dead worker: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("run wedged for %v", elapsed)
	}
	assertBitIdentical(t, want, got.Values, "with one dead worker")
}

func TestFatalErrorCancelsInFlightTiles(t *testing.T) {
	d := testData(5, 200)
	req := kdvReq(kernel.MustNew(kernel.Quartic, 9), 2, 2)

	c, workers, client := cluster(t, 1, shard.Config{
		Replication: 1, Retries: 0, Concurrency: 4,
		Timeout: 30 * time.Second,
	})
	// First tile request dies with a non-retryable 400; the rest hang
	// until their contexts cancel. If leader cancel fails to propagate,
	// this test times out.
	workers[0].Script(shardtest.Rule{Tool: "kdv", Times: 1, Status: http.StatusBadRequest})
	workers[0].Script(shardtest.Rule{Tool: "kdv", Hang: true})

	baseline := runtime.NumGoroutine()
	start := time.Now()
	_, err := c.KDV(context.Background(), d, "ev", req)
	if err == nil {
		t.Fatal("injected 400 did not fail the run")
	}
	if !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("error does not carry the worker message: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("leader cancel took %v", elapsed)
	}
	client.CloseIdleConnections()
	settleGoroutines(t, baseline)
}

func TestCallerCancelPropagates(t *testing.T) {
	d := testData(5, 200)
	req := kdvReq(kernel.MustNew(kernel.Quartic, 9), 2, 2)

	c, workers, client := cluster(t, 1, shard.Config{
		Replication: 1, Retries: 0, Concurrency: 4,
		Timeout: 30 * time.Second,
	})
	workers[0].Script(shardtest.Rule{Tool: "kdv", Hang: true})

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, err := c.KDV(ctx, d, "ev", req)
	if err == nil {
		t.Fatal("cancelled run returned success")
	}
	client.CloseIdleConnections()
	settleGoroutines(t, baseline)
}

func TestPlacementCacheSkipsReupload(t *testing.T) {
	d := testData(5, 200)
	req := kdvReq(kernel.MustNew(kernel.Quartic, 9), 2, 2)

	c, _, _ := cluster(t, 2, shard.Config{Replication: 1})
	if _, err := c.KDV(context.Background(), d, "ev", req); err != nil {
		t.Fatal(err)
	}
	uploads := counterValue(t, c, "shard_uploads_total")
	if uploads == 0 {
		t.Fatal("first run uploaded nothing")
	}
	if _, err := c.KDV(context.Background(), d, "ev", req); err != nil {
		t.Fatal(err)
	}
	if again := counterValue(t, c, "shard_uploads_total"); again != uploads {
		t.Fatalf("second run re-uploaded: %d -> %d", uploads, again)
	}
}

// counterValue reads one counter out of the coordinator's /metrics text.
func counterValue(t *testing.T, c *shard.Coordinator, name string) int64 {
	t.Helper()
	var sb strings.Builder
	if err := c.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseInt(strings.TrimSpace(line[len(name)+1:]), 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d > baseline %d", n, baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
