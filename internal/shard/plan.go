package shard

import (
	"bytes"
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/kernel"
)

// KDVRequest describes one sharded KDV computation: the full-extent grid
// and kernel of the single-node request it must reproduce bit-for-bit,
// plus the tile decomposition.
type KDVRequest struct {
	// Kernel is K and bandwidth b. Only finite-support kernels shard
	// exactly: every point beyond the support radius contributes exactly
	// zero, so dropping it cannot change an IEEE sum. The planner rejects
	// Gaussian and exponential kernels.
	Kernel kernel.Kernel
	// Grid is the full output raster. Tiles are pixel windows of it; the
	// workers evaluate centers from this grid, never from a tile sub-box.
	Grid geom.PixelGrid
	// TilesX, TilesY split the raster into TilesX×TilesY tiles (balanced
	// integer cuts). 0 means 1.
	TilesX, TilesY int
	// Halo is the margin (in coordinate units) around each tile's pixel
	// box within which points are replicated to the tile. 0 derives the
	// exact minimum — the kernel's support radius. A value below the
	// support radius is a planning error: the tile would miss points that
	// contribute to its edge pixels.
	Halo float64
	// Normalize applies NormConst/n scaling after the merge, replicating
	// the single-node normalize=true surface. Workers always compute raw
	// sums: the scale depends on the full point count, which no single
	// tile knows.
	Normalize bool
}

// Tile is one unit of sharded KDV work: a pixel window of the full grid
// plus the halo-filtered point subset that makes it edge-correct in
// isolation.
type Tile struct {
	ID     int
	Window geom.GridWindow
	// HaloBox is the tile's pixel box padded by the halo margin. The
	// axis-aligned pad covers the Euclidean neighbourhood: axis distance
	// never exceeds Euclidean distance, so every point within the support
	// radius of any tile pixel center lies inside the box.
	HaloBox geom.BBox
	// Dataset is the worker-side dataset name for the tile's point
	// subset: "<name>.<digest12>.t<id>". Digest-derived names mean a
	// re-run over the same data reuses datasets already on the workers.
	Dataset string
	// Digest is the expected content digest of the tile subset, checked
	// against the worker before compute.
	Digest string

	// csv is the encoded subset for upload; nil for an empty tile (no
	// points in the halo box), which is zero-filled locally — workers
	// reject empty datasets, and zero is what an empty sum produces.
	csv []byte
	n   int
}

// Empty reports whether the tile has no contributing points.
func (t *Tile) Empty() bool { return t.csv == nil }

// KDVPlan is a validated tile decomposition for one KDVRequest.
type KDVPlan struct {
	Req   KDVRequest
	Halo  float64
	Tiles []Tile
	// N is the full dataset's point count (the normalisation mass).
	N int
}

// PlanKDV validates req against the dataset and cuts the raster into
// halo-replicated tiles. name is the logical dataset name used to derive
// worker-side tile dataset names; it must be URL-safe.
func PlanKDV(d *dataset.Dataset, name string, req KDVRequest) (*KDVPlan, error) {
	if d == nil || d.N() == 0 {
		return nil, fmt.Errorf("shard: empty dataset")
	}
	if err := checkName(name); err != nil {
		return nil, err
	}
	if d.HasWeights() {
		return nil, fmt.Errorf("shard: weighted datasets are not shardable (the CSV transport carries x,y[,t][,value] only)")
	}
	if req.Kernel.Bandwidth() <= 0 {
		return nil, fmt.Errorf("shard: kernel not initialised (zero bandwidth); use kernel.New")
	}
	if !req.Kernel.FiniteSupport() {
		return nil, fmt.Errorf("shard: %s kernel has infinite support and cannot shard exactly; every point contributes to every tile", req.Kernel.Type())
	}
	if req.Grid.NX <= 0 || req.Grid.NY <= 0 {
		return nil, fmt.Errorf("shard: grid not initialised (%dx%d)", req.Grid.NX, req.Grid.NY)
	}
	tx, ty := req.TilesX, req.TilesY
	if tx == 0 {
		tx = 1
	}
	if ty == 0 {
		ty = 1
	}
	if tx < 1 || tx > req.Grid.NX || ty < 1 || ty > req.Grid.NY {
		return nil, fmt.Errorf("shard: %dx%d tiles over a %dx%d grid", tx, ty, req.Grid.NX, req.Grid.NY)
	}
	halo := req.Halo
	if halo == 0 {
		halo = req.Kernel.SupportRadius()
	}
	if halo < req.Kernel.SupportRadius() {
		return nil, fmt.Errorf("shard: halo %g is below the kernel support radius %g; tile edge pixels would miss contributing points",
			halo, req.Kernel.SupportRadius())
	}

	digest := d.Digest()
	plan := &KDVPlan{Req: req, Halo: halo, N: d.N(), Tiles: make([]Tile, 0, tx*ty)}
	for iy := 0; iy < ty; iy++ {
		for ix := 0; ix < tx; ix++ {
			win := geom.GridWindow{
				X0: ix * req.Grid.NX / tx,
				Y0: iy * req.Grid.NY / ty,
			}
			win.NX = (ix+1)*req.Grid.NX/tx - win.X0
			win.NY = (iy+1)*req.Grid.NY/ty - win.Y0
			id := iy*tx + ix
			t := Tile{
				ID:      id,
				Window:  win,
				HaloBox: req.Grid.WindowBox(win).Pad(halo),
				Dataset: fmt.Sprintf("%s.%s.t%d", name, digest[:12], id),
			}
			sub := d.FilterBox(t.HaloBox)
			if sub.N() > 0 {
				var buf bytes.Buffer
				if err := dataset.WriteCSV(&buf, sub); err != nil {
					return nil, fmt.Errorf("shard: encode tile %d: %w", id, err)
				}
				t.csv = buf.Bytes()
				t.n = sub.N()
				t.Digest = sub.Digest()
			}
			plan.Tiles = append(plan.Tiles, t)
		}
	}
	return plan, nil
}

// tileQuery builds the worker request for one tile: a windowed naive KDV
// over the FULL grid spec. bbox and bandwidth are shortest-round-trip
// decimal, which ParseFloat recovers to the identical float64, so the
// worker reconstructs this exact grid.
func (p *KDVPlan) tileQuery(t *Tile) url.Values {
	q := url.Values{}
	q.Set("dataset", t.Dataset)
	q.Set("method", "naive")
	q.Set("kernel", p.Req.Kernel.Type().String())
	q.Set("bandwidth", formatF(p.Req.Kernel.Bandwidth()))
	q.Set("width", strconv.Itoa(p.Req.Grid.NX))
	q.Set("height", strconv.Itoa(p.Req.Grid.NY))
	b := p.Req.Grid.Box
	q.Set("bbox", formatF(b.MinX)+","+formatF(b.MinY)+","+formatF(b.MaxX)+","+formatF(b.MaxY))
	q.Set("tile", fmt.Sprintf("%d,%d,%d,%d", t.Window.X0, t.Window.Y0, t.Window.NX, t.Window.NY))
	return q
}

// KFuncRequest describes one sharded K-function computation.
type KFuncRequest struct {
	// Thresholds is the full strictly-increasing band list of the
	// single-node plot to reproduce.
	Thresholds []float64
	// Sims is the Monte-Carlo envelope simulation count; Seed drives the
	// simulation draws. Each simulation's point pattern depends only on
	// (seed, sim index), never on the band list, so any partition of the
	// bands yields the same per-band envelope.
	Sims int
	Seed int64
	// Bands is the number of thresholds per worker request (the fan-out
	// unit). 0 means one batch per band.
	Bands int
}

// KFuncPlan is a validated band decomposition: contiguous threshold
// batches over the full dataset, which every owner worker holds in full —
// K-function pair counting has no spatial locality to exploit without
// double-counting border pairs, so the "tile" unit is the band, not a
// region.
type KFuncPlan struct {
	Req     KFuncRequest
	Dataset string // worker-side dataset name: "<name>.<digest12>"
	Digest  string
	Batches []Batch
	csv     []byte
}

// Batch is one contiguous [Lo, Hi) slice of the threshold list.
type Batch struct {
	ID     int
	Lo, Hi int
}

// PlanKFunc validates req and cuts the threshold list into batches.
func PlanKFunc(d *dataset.Dataset, name string, req KFuncRequest) (*KFuncPlan, error) {
	if d == nil || d.N() == 0 {
		return nil, fmt.Errorf("shard: empty dataset")
	}
	if err := checkName(name); err != nil {
		return nil, err
	}
	if d.HasWeights() {
		return nil, fmt.Errorf("shard: weighted datasets are not shardable (the CSV transport carries x,y[,t][,value] only)")
	}
	if len(req.Thresholds) == 0 {
		return nil, fmt.Errorf("shard: no thresholds")
	}
	prev := 0.0
	for i, s := range req.Thresholds {
		if s <= prev {
			return nil, fmt.Errorf("shard: thresholds must be positive and strictly increasing (index %d: %g after %g)", i, s, prev)
		}
		prev = s
	}
	if req.Sims < 1 {
		return nil, fmt.Errorf("shard: sims must be positive")
	}
	per := req.Bands
	if per <= 0 {
		per = 1
	}
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, d); err != nil {
		return nil, fmt.Errorf("shard: encode dataset: %w", err)
	}
	digest := d.Digest()
	plan := &KFuncPlan{
		Req:     req,
		Dataset: fmt.Sprintf("%s.%s", name, digest[:12]),
		Digest:  digest,
		csv:     buf.Bytes(),
	}
	for lo := 0; lo < len(req.Thresholds); lo += per {
		hi := lo + per
		if hi > len(req.Thresholds) {
			hi = len(req.Thresholds)
		}
		plan.Batches = append(plan.Batches, Batch{ID: len(plan.Batches), Lo: lo, Hi: hi})
	}
	return plan, nil
}

// batchQuery builds the worker request for one threshold batch.
func (p *KFuncPlan) batchQuery(b *Batch) url.Values {
	parts := make([]string, 0, b.Hi-b.Lo)
	for _, s := range p.Req.Thresholds[b.Lo:b.Hi] {
		parts = append(parts, formatF(s))
	}
	q := url.Values{}
	q.Set("dataset", p.Dataset)
	q.Set("sims", strconv.Itoa(p.Req.Sims))
	q.Set("seed", strconv.FormatInt(p.Req.Seed, 10))
	q.Set("thresholds", strings.Join(parts, ","))
	return q
}

// formatF renders a float64 in shortest form that ParseFloat round-trips
// to the identical bits (the dataset CSV convention).
func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// checkName rejects dataset names that would not survive a URL path or
// query round-trip unescaped, keeping worker-side names exactly equal to
// the planner's.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("shard: empty dataset name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("shard: dataset name %q: use letters, digits, '-', '_', '.'", name)
		}
	}
	return nil
}
