package shard

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/kde"
	"geostat/internal/kernel"
)

var planBox = geom.BBox{MinX: -50, MinY: 10, MaxX: 150, MaxY: 170}

func planData(t *testing.T, seed int64, n int) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	return dataset.GaussianClusters(r, n, planBox, []dataset.Cluster{
		{Center: geom.Point{X: 0, Y: 60}, Sigma: 15, Weight: 1},
		{Center: geom.Point{X: 100, Y: 120}, Sigma: 25, Weight: 2},
	}, 0.3)
}

var finiteKernels = []kernel.Type{
	kernel.Uniform, kernel.Triangular, kernel.Epanechnikov,
	kernel.Quartic, kernel.Triweight, kernel.Cosine,
}

// TestPlanTilesPartitionGrid: tile windows must cover every pixel of the
// grid exactly once, for arbitrary (tx, ty) cuts including ones that do
// not divide the grid evenly.
func TestPlanTilesPartitionGrid(t *testing.T) {
	d := planData(t, 3, 100)
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		nx, ny := 1+r.Intn(40), 1+r.Intn(40)
		tx, ty := 1+r.Intn(nx), 1+r.Intn(ny)
		req := KDVRequest{
			Kernel: kernel.MustNew(kernel.Quartic, 10),
			Grid:   geom.NewPixelGrid(planBox, nx, ny),
			TilesX: tx, TilesY: ty,
		}
		plan, err := PlanKDV(d, "p", req)
		if err != nil {
			t.Fatalf("trial %d (%dx%d grid, %dx%d tiles): %v", trial, nx, ny, tx, ty, err)
		}
		if len(plan.Tiles) != tx*ty {
			t.Fatalf("trial %d: %d tiles, want %d", trial, len(plan.Tiles), tx*ty)
		}
		covered := make([]int, nx*ny)
		for _, tile := range plan.Tiles {
			w := tile.Window
			if err := req.Grid.CheckWindow(w); err != nil {
				t.Fatalf("trial %d tile %d: invalid window %+v: %v", trial, tile.ID, w, err)
			}
			for iy := w.Y0; iy < w.Y0+w.NY; iy++ {
				for ix := w.X0; ix < w.X0+w.NX; ix++ {
					covered[iy*nx+ix]++
				}
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("trial %d: pixel %d covered %d times", trial, i, c)
			}
		}
	}
}

// TestHaloSubsetProperty is the planner's exactness property: for random
// finite-support kernels, bandwidths and tile cuts, evaluating each tile's
// window against only its halo-filtered subset must reproduce the
// full-dataset window Float64bits-for-Float64bits.
func TestHaloSubsetProperty(t *testing.T) {
	d := planData(t, 5, 400)
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		typ := finiteKernels[r.Intn(len(finiteKernels))]
		bw := 4 + 28*r.Float64()
		req := KDVRequest{
			Kernel: kernel.MustNew(typ, bw),
			Grid:   geom.NewPixelGrid(planBox, 20+r.Intn(21), 16+r.Intn(17)),
			TilesX: 1 + r.Intn(4), TilesY: 1 + r.Intn(4),
		}
		plan, err := PlanKDV(d, "p", req)
		if err != nil {
			t.Fatalf("trial %d (%v bw=%g): %v", trial, typ, bw, err)
		}
		opt := kde.Options{Kernel: req.Kernel, Grid: req.Grid}
		for _, tile := range plan.Tiles {
			wopt := opt
			wopt.Window = tile.Window
			full, err := kde.NaiveCols(d.Columns(), wopt)
			if err != nil {
				t.Fatalf("trial %d tile %d full: %v", trial, tile.ID, err)
			}
			if tile.Empty() {
				for i, v := range full.Values {
					if v != 0 {
						t.Fatalf("trial %d tile %d: planner marked empty but full window pixel %d = %g",
							trial, tile.ID, i, v)
					}
				}
				continue
			}
			sub := d.FilterBox(tile.HaloBox)
			got, err := kde.NaiveCols(sub.Columns(), wopt)
			if err != nil {
				t.Fatalf("trial %d tile %d subset: %v", trial, tile.ID, err)
			}
			for i := range full.Values {
				if math.Float64bits(full.Values[i]) != math.Float64bits(got.Values[i]) {
					t.Fatalf("trial %d (%v bw=%g) tile %d pixel %d: subset %x != full %x",
						trial, typ, bw, tile.ID, i,
						math.Float64bits(got.Values[i]), math.Float64bits(full.Values[i]))
				}
			}
		}
	}
}

// TestHaloOversizedStillExact: any halo at or above the support radius is
// valid and exact (extra points contribute exactly zero to the window).
func TestHaloOversizedStillExact(t *testing.T) {
	d := planData(t, 9, 300)
	k := kernel.MustNew(kernel.Epanechnikov, 12)
	req := KDVRequest{
		Kernel: k,
		Grid:   geom.NewPixelGrid(planBox, 24, 20),
		TilesX: 3, TilesY: 2,
		Halo: k.SupportRadius() * 2.5,
	}
	plan, err := PlanKDV(d, "p", req)
	if err != nil {
		t.Fatal(err)
	}
	opt := kde.Options{Kernel: k, Grid: req.Grid}
	for _, tile := range plan.Tiles {
		if tile.Empty() {
			continue
		}
		wopt := opt
		wopt.Window = tile.Window
		full, err := kde.NaiveCols(d.Columns(), wopt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := kde.NaiveCols(d.FilterBox(tile.HaloBox).Columns(), wopt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range full.Values {
			if math.Float64bits(full.Values[i]) != math.Float64bits(got.Values[i]) {
				t.Fatalf("tile %d pixel %d differs with oversized halo", tile.ID, i)
			}
		}
	}
}

func TestPlanKDVValidation(t *testing.T) {
	d := planData(t, 3, 50)
	grid := geom.NewPixelGrid(planBox, 16, 12)
	good := KDVRequest{Kernel: kernel.MustNew(kernel.Quartic, 10), Grid: grid, TilesX: 2, TilesY: 2}

	cases := []struct {
		name string
		d    *dataset.Dataset
		ds   string
		mut  func(*KDVRequest)
	}{
		{name: "nil dataset", d: nil, ds: "p"},
		{name: "bad name", d: d, ds: "a/b"},
		{name: "empty name", d: d, ds: ""},
		{name: "gaussian kernel", d: d, ds: "p", mut: func(r *KDVRequest) {
			r.Kernel = kernel.MustNew(kernel.Gaussian, 10)
		}},
		{name: "exponential kernel", d: d, ds: "p", mut: func(r *KDVRequest) {
			r.Kernel = kernel.MustNew(kernel.Exponential, 10)
		}},
		{name: "zero-value kernel", d: d, ds: "p", mut: func(r *KDVRequest) {
			r.Kernel = kernel.Kernel{}
		}},
		{name: "zero grid", d: d, ds: "p", mut: func(r *KDVRequest) {
			r.Grid = geom.PixelGrid{}
		}},
		{name: "too many tiles", d: d, ds: "p", mut: func(r *KDVRequest) {
			r.TilesX = grid.NX + 1
		}},
		{name: "negative tiles", d: d, ds: "p", mut: func(r *KDVRequest) {
			r.TilesY = -1
		}},
		{name: "undersized halo", d: d, ds: "p", mut: func(r *KDVRequest) {
			r.Halo = r.Kernel.SupportRadius() * 0.99
		}},
	}
	for _, tc := range cases {
		req := good
		if tc.mut != nil {
			tc.mut(&req)
		}
		if _, err := PlanKDV(tc.d, tc.ds, req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// Weighted datasets cannot ride the CSV transport.
	wd := planData(t, 3, 50)
	weights := make([]float64, wd.N())
	for i := range weights {
		weights[i] = 2
	}
	if err := wd.SetWeights(weights); err != nil {
		t.Fatal(err)
	}
	if _, err := PlanKDV(wd, "p", good); err == nil {
		t.Error("weighted dataset accepted")
	}

	if _, err := PlanKDV(d, "p", good); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
}

func TestPlanKFuncValidationAndBatches(t *testing.T) {
	d := planData(t, 3, 50)
	good := KFuncRequest{Thresholds: []float64{5, 10, 15, 20, 25}, Sims: 4, Seed: 1, Bands: 2}

	bad := []struct {
		name string
		mut  func(*KFuncRequest)
	}{
		{"no thresholds", func(r *KFuncRequest) { r.Thresholds = nil }},
		{"non-increasing", func(r *KFuncRequest) { r.Thresholds = []float64{5, 5, 10} }},
		{"non-positive", func(r *KFuncRequest) { r.Thresholds = []float64{0, 5} }},
		{"zero sims", func(r *KFuncRequest) { r.Sims = 0 }},
	}
	for _, tc := range bad {
		req := good
		tc.mut(&req)
		if _, err := PlanKFunc(d, "p", req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	plan, err := PlanKFunc(d, "p", good)
	if err != nil {
		t.Fatal(err)
	}
	// Batches must be contiguous, ordered, and cover [0, len) exactly.
	next := 0
	for i, b := range plan.Batches {
		if b.ID != i || b.Lo != next || b.Hi <= b.Lo {
			t.Fatalf("batch %d malformed: %+v (expected Lo=%d)", i, b, next)
		}
		next = b.Hi
	}
	if next != len(good.Thresholds) {
		t.Fatalf("batches cover [0,%d), want [0,%d)", next, len(good.Thresholds))
	}
	if len(plan.Batches) != 3 { // 2+2+1
		t.Fatalf("%d batches, want 3", len(plan.Batches))
	}
}
