package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"geostat/internal/geom"
)

func randomPoints(r *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
	}
	return pts
}

func bruteRangeCount(pts []geom.Point, q geom.Point, rad float64) int {
	c := 0
	for _, p := range pts {
		if p.Dist2(q) <= rad*rad {
			c++
		}
	}
	return c
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.RangeCount(geom.Point{}, 10); got != 0 {
		t.Errorf("RangeCount = %d", got)
	}
	if got := tr.RangeQuery(geom.Point{}, 10, nil); len(got) != 0 {
		t.Errorf("RangeQuery = %v", got)
	}
	if i, d := tr.Nearest(geom.Point{}); i != -1 || !math.IsInf(d, 1) {
		t.Errorf("Nearest = %d, %v", i, d)
	}
	if !tr.Bounds().IsEmpty() {
		t.Error("Bounds should be empty")
	}
	tr.Visit(func(geom.BBox, int) bool { t.Error("Visit on empty tree"); return false }, nil)
}

func TestInputNotModified(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randomPoints(r, 200)
	orig := append([]geom.Point(nil), pts...)
	New(pts)
	for i := range pts {
		if pts[i] != orig[i] {
			t.Fatal("New modified its input slice")
		}
	}
}

func TestRangeCountMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 7, 16, 17, 100, 1000} {
		pts := randomPoints(r, n)
		tr := New(pts)
		for trial := 0; trial < 200; trial++ {
			q := geom.Point{X: r.Float64()*120 - 10, Y: r.Float64()*120 - 10}
			rad := r.Float64() * 40
			want := bruteRangeCount(pts, q, rad)
			if got := tr.RangeCount(q, rad); got != want {
				t.Fatalf("n=%d: RangeCount(%v, %v) = %d, want %d", n, q, rad, got, want)
			}
		}
	}
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randomPoints(r, 500)
	tr := New(pts)
	for trial := 0; trial < 100; trial++ {
		q := geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		rad := r.Float64() * 30
		got := tr.RangeQuery(q, rad, nil)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if p.Dist2(q) <= rad*rad {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("RangeQuery size %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("RangeQuery[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Point{X: 5, Y: 5} // all identical
	}
	tr := New(pts)
	if got := tr.RangeCount(geom.Point{X: 5, Y: 5}, 0); got != 100 {
		t.Errorf("RangeCount at duplicate site = %d, want 100", got)
	}
	if got := tr.RangeCount(geom.Point{X: 6, Y: 5}, 0.5); got != 0 {
		t.Errorf("RangeCount away = %d, want 0", got)
	}
}

func TestNearest(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randomPoints(r, 300)
	tr := New(pts)
	for trial := 0; trial < 200; trial++ {
		q := geom.Point{X: r.Float64()*140 - 20, Y: r.Float64()*140 - 20}
		gi, gd := tr.Nearest(q)
		wi, wd := -1, math.Inf(1)
		for i, p := range pts {
			if d := p.Dist(q); d < wd {
				wi, wd = i, d
			}
		}
		if math.Abs(gd-wd) > 1e-9 {
			t.Fatalf("Nearest dist = %v, want %v", gd, wd)
		}
		if pts[gi].Dist(q) != gd {
			t.Fatalf("Nearest index %d inconsistent with distance", gi)
		}
		_ = wi
	}
}

func TestKNearest(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := randomPoints(r, 400)
	tr := New(pts)
	for _, k := range []int{1, 3, 10, 50, 400, 500} {
		q := geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		idx, d2 := tr.KNearest(q, k, nil)
		wantK := k
		if wantK > len(pts) {
			wantK = len(pts)
		}
		if len(idx) != wantK || len(d2) != wantK {
			t.Fatalf("k=%d: got %d results", k, len(idx))
		}
		// Distances must be sorted ascending and match the points.
		for i := range idx {
			if got := pts[idx[i]].Dist2(q); math.Abs(got-d2[i]) > 1e-9 {
				t.Fatalf("k=%d: d2[%d] = %v but point dist2 = %v", k, i, d2[i], got)
			}
			if i > 0 && d2[i] < d2[i-1] {
				t.Fatalf("k=%d: distances not sorted at %d", k, i)
			}
		}
		// The k-th distance must match a brute-force selection.
		all := make([]float64, len(pts))
		for i, p := range pts {
			all[i] = p.Dist2(q)
		}
		sort.Float64s(all)
		if math.Abs(d2[wantK-1]-all[wantK-1]) > 1e-9 {
			t.Fatalf("k=%d: kth dist %v, want %v", k, d2[wantK-1], all[wantK-1])
		}
	}
	if idx, _ := tr.KNearest(geom.Point{}, 0, nil); idx != nil {
		t.Error("k=0 should return nil")
	}
}

func TestVisitFullDescentSeesAllPoints(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := randomPoints(r, 333)
	tr := New(pts)
	seen := 0
	tr.Visit(
		func(box geom.BBox, count int) bool {
			if count <= 0 {
				t.Fatal("node with non-positive count")
			}
			return true
		},
		func(p geom.Point) { seen++ },
	)
	if seen != len(pts) {
		t.Errorf("Visit saw %d points, want %d", seen, len(pts))
	}
}

func TestVisitAcceptRootCountsEverything(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randomPoints(r, 128)
	tr := New(pts)
	total := 0
	tr.Visit(
		func(box geom.BBox, count int) bool {
			total += count
			return false // accept immediately
		},
		func(geom.Point) { t.Fatal("leafFn should not run") },
	)
	if total != len(pts) {
		t.Errorf("root count %d, want %d", total, len(pts))
	}
}

func TestCollinearPoints(t *testing.T) {
	// Degenerate geometry: all points on a horizontal line.
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i), Y: 3}
	}
	tr := New(pts)
	if got := tr.RangeCount(geom.Point{X: 250, Y: 3}, 10); got != 21 {
		t.Errorf("collinear RangeCount = %d, want 21", got)
	}
}
