// Package kdtree implements a 2-d tree over point datasets (Bentley [21]
// in the paper), the index structure behind two of the paper's acceleration
// families: range-query-based K-function computation (§2.3) and
// function-approximation KDE, which walks the tree refining per-node
// lower/upper kernel bounds (§2.2).
//
// The tree is built once over an immutable point slice; nodes store their
// bounding box and subtree size so that (a) disc range counting can accept
// or reject whole subtrees and (b) bound-based KDE can score a whole
// subtree in O(1) from MinDist2/MaxDist2.
package kdtree

import (
	"math"
	"sort"

	"geostat/internal/geom"
)

// Tree is an immutable 2-d tree. Build with New.
type Tree struct {
	pts   []geom.Point // points reordered during construction
	idx   []int        // idx[i] = original index of pts[i]
	nodes []node       // implicit tree, nodes[0] is the root
}

// node is one kd-tree node covering pts[lo:hi).
type node struct {
	box         geom.BBox
	lo, hi      int // point range covered by this subtree
	left, right int32
	// left/right are node indices; -1 for leaves.
}

const leafSize = 16 // points per leaf; small enough for tight boxes, large enough to amortise recursion

// New builds a kd-tree over pts. The input slice is not modified; the tree
// keeps its own reordered copy. Building is O(n log n).
func New(pts []geom.Point) *Tree {
	t := &Tree{
		pts: append([]geom.Point(nil), pts...),
		idx: make([]int, len(pts)),
	}
	for i := range t.idx {
		t.idx[i] = i
	}
	if len(pts) == 0 {
		return t
	}
	t.nodes = make([]node, 0, 2*(len(pts)/leafSize+1))
	t.build(0, len(pts), 0)
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Bounds returns the bounding box of the indexed points.
func (t *Tree) Bounds() geom.BBox {
	if len(t.nodes) == 0 {
		return geom.EmptyBBox()
	}
	return t.nodes[0].box
}

// build constructs the subtree over pts[lo:hi) splitting on the wider axis,
// and returns the node index.
func (t *Tree) build(lo, hi, depth int) int32 {
	ni := int32(len(t.nodes))
	n := node{box: geom.NewBBox(t.pts[lo:hi]), lo: lo, hi: hi, left: -1, right: -1}
	t.nodes = append(t.nodes, n)
	if hi-lo <= leafSize {
		return ni
	}
	// Split on the wider axis at the median for balanced depth.
	byX := t.pts[lo:hi]
	axisX := t.nodes[ni].box.Width() >= t.nodes[ni].box.Height()
	mid := (hi - lo) / 2
	sub := &pointsByAxis{pts: byX, idx: t.idx[lo:hi], x: axisX}
	// nth_element via full sort would be O(n log² n) overall; a quickselect
	// keeps construction O(n log n).
	quickselect(sub, mid)
	left := t.build(lo, lo+mid, depth+1)
	right := t.build(lo+mid, hi, depth+1)
	t.nodes[ni].left = left
	t.nodes[ni].right = right
	return ni
}

// pointsByAxis sorts a point range (and its parallel index slice) by one axis.
type pointsByAxis struct {
	pts []geom.Point
	idx []int
	x   bool
}

func (s *pointsByAxis) Len() int { return len(s.pts) }
func (s *pointsByAxis) Less(i, j int) bool {
	if s.x {
		return s.pts[i].X < s.pts[j].X
	}
	return s.pts[i].Y < s.pts[j].Y
}
func (s *pointsByAxis) Swap(i, j int) {
	s.pts[i], s.pts[j] = s.pts[j], s.pts[i]
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
}

// quickselect partially sorts s so that element k is in its sorted position
// and everything before it is <= everything after. Falls back to heapsort
// behaviour via sort.Sort on tiny ranges.
func quickselect(s *pointsByAxis, k int) {
	lo, hi := 0, s.Len()
	for hi-lo > 8 {
		p := partition(s, lo, hi)
		switch {
		case p == k:
			return
		case k < p:
			hi = p
		default:
			lo = p + 1
		}
	}
	sort.Sort(&rangeSorter{s, lo, hi})
}

// rangeSorter sorts the subrange [lo, hi) of s.
type rangeSorter struct {
	s      *pointsByAxis
	lo, hi int
}

func (r *rangeSorter) Len() int           { return r.hi - r.lo }
func (r *rangeSorter) Less(i, j int) bool { return r.s.Less(r.lo+i, r.lo+j) }
func (r *rangeSorter) Swap(i, j int)      { r.s.Swap(r.lo+i, r.lo+j) }

// partition performs a Hoare-style partition of s[lo:hi) around a
// median-of-three pivot and returns the pivot's final index.
func partition(s *pointsByAxis, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median of three to resist sorted inputs.
	if s.Less(mid, lo) {
		s.Swap(mid, lo)
	}
	if s.Less(hi-1, lo) {
		s.Swap(hi-1, lo)
	}
	if s.Less(hi-1, mid) {
		s.Swap(hi-1, mid)
	}
	s.Swap(mid, hi-1) // pivot to end
	pivot := hi - 1
	store := lo
	for i := lo; i < pivot; i++ {
		if s.Less(i, pivot) {
			s.Swap(i, store)
			store++
		}
	}
	s.Swap(store, pivot)
	return store
}

// RangeCount returns the number of indexed points within distance r of q
// (boundary inclusive), in O(sqrt(n) + k-ish) time by accepting and
// rejecting whole subtrees against the disc.
func (t *Tree) RangeCount(q geom.Point, r float64) int {
	if len(t.nodes) == 0 {
		return 0
	}
	return t.rangeCount(0, q, r*r)
}

func (t *Tree) rangeCount(ni int32, q geom.Point, r2 float64) int {
	n := &t.nodes[ni]
	if n.box.MinDist2(q) > r2 {
		return 0
	}
	if n.box.MaxDist2(q) <= r2 {
		return n.hi - n.lo
	}
	if n.left < 0 {
		c := 0
		for _, p := range t.pts[n.lo:n.hi] {
			if p.Dist2(q) <= r2 {
				c++
			}
		}
		return c
	}
	return t.rangeCount(n.left, q, r2) + t.rangeCount(n.right, q, r2)
}

// RangeQuery appends to dst the original indices of all points within
// distance r of q and returns the extended slice.
func (t *Tree) RangeQuery(q geom.Point, r float64, dst []int) []int {
	if len(t.nodes) == 0 {
		return dst
	}
	return t.rangeQuery(0, q, r*r, dst)
}

func (t *Tree) rangeQuery(ni int32, q geom.Point, r2 float64, dst []int) []int {
	n := &t.nodes[ni]
	if n.box.MinDist2(q) > r2 {
		return dst
	}
	if n.box.MaxDist2(q) <= r2 {
		return append(dst, t.idx[n.lo:n.hi]...)
	}
	if n.left < 0 {
		for i := n.lo; i < n.hi; i++ {
			if t.pts[i].Dist2(q) <= r2 {
				dst = append(dst, t.idx[i])
			}
		}
		return dst
	}
	dst = t.rangeQuery(n.left, q, r2, dst)
	return t.rangeQuery(n.right, q, r2, dst)
}

// Nearest returns the original index of the point nearest to q and its
// distance. It returns (-1, +Inf) on an empty tree.
func (t *Tree) Nearest(q geom.Point) (int, float64) {
	idx, d2 := t.KNearest(q, 1, nil)
	if len(idx) == 0 {
		return -1, math.Inf(1)
	}
	return idx[0], math.Sqrt(d2[0])
}

// KNearest returns the original indices of the k points nearest to q,
// ordered by increasing distance, and their squared distances. The reuse
// slice, if non-nil, is used as scratch to avoid allocation.
func (t *Tree) KNearest(q geom.Point, k int, reuse []int) (idx []int, d2 []float64) {
	if k <= 0 || len(t.nodes) == 0 {
		return nil, nil
	}
	if k > len(t.pts) {
		k = len(t.pts)
	}
	h := &nnHeap{}
	t.kNearest(0, q, k, h)
	// Extract in increasing order.
	idx = reuse[:0]
	idx = append(idx, make([]int, h.n)...)
	d2 = make([]float64, h.n)
	for i := h.n - 1; i >= 0; i-- {
		idx[i], d2[i] = h.pop()
	}
	return idx, d2
}

func (t *Tree) kNearest(ni int32, q geom.Point, k int, h *nnHeap) {
	n := &t.nodes[ni]
	if h.n == k && n.box.MinDist2(q) > h.max() {
		return
	}
	if n.left < 0 {
		for i := n.lo; i < n.hi; i++ {
			h.push(t.idx[i], t.pts[i].Dist2(q), k)
		}
		return
	}
	// Visit the child nearer to q first for tighter pruning.
	l, r := n.left, n.right
	if t.nodes[l].box.MinDist2(q) > t.nodes[r].box.MinDist2(q) {
		l, r = r, l
	}
	t.kNearest(l, q, k, h)
	t.kNearest(r, q, k, h)
}

// nnHeap is a fixed-capacity max-heap on squared distance, keeping the k
// best candidates seen so far.
type nnHeap struct {
	idx []int
	d2  []float64
	n   int
}

func (h *nnHeap) max() float64 { return h.d2[0] }

func (h *nnHeap) push(idx int, d2 float64, k int) {
	if h.n < k {
		h.idx = append(h.idx[:h.n], idx)
		h.d2 = append(h.d2[:h.n], d2)
		h.n++
		h.up(h.n - 1)
		return
	}
	if d2 >= h.d2[0] {
		return
	}
	h.idx[0], h.d2[0] = idx, d2
	h.down(0)
}

func (h *nnHeap) pop() (int, float64) {
	idx, d2 := h.idx[0], h.d2[0]
	h.n--
	h.idx[0], h.d2[0] = h.idx[h.n], h.d2[h.n]
	h.down(0)
	return idx, d2
}

func (h *nnHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.d2[parent] >= h.d2[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *nnHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < h.n && h.d2[l] > h.d2[big] {
			big = l
		}
		if r < h.n && h.d2[r] > h.d2[big] {
			big = r
		}
		if big == i {
			return
		}
		h.swap(i, big)
		i = big
	}
}

func (h *nnHeap) swap(i, j int) {
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
	h.d2[i], h.d2[j] = h.d2[j], h.d2[i]
}

// Visit walks the tree for bound-based aggregation (the QUAD/KARL pattern):
// fn is called with each node's bounding box and point count and decides
// whether to descend (true) or accept the node as-is (false). Leaves whose
// fn returns true are expanded point-by-point via leafFn.
func (t *Tree) Visit(fn func(box geom.BBox, count int) bool, leafFn func(p geom.Point)) {
	if len(t.nodes) == 0 {
		return
	}
	t.visit(0, fn, leafFn)
}

func (t *Tree) visit(ni int32, fn func(geom.BBox, int) bool, leafFn func(geom.Point)) {
	n := &t.nodes[ni]
	if !fn(n.box, n.hi-n.lo) {
		return
	}
	if n.left < 0 {
		for _, p := range t.pts[n.lo:n.hi] {
			leafFn(p)
		}
		return
	}
	t.visit(n.left, fn, leafFn)
	t.visit(n.right, fn, leafFn)
}
