package kdtree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"geostat/internal/geom"
)

// pointSet is a quick.Generator producing random point clouds with varied
// size, scale, and duplication (duplicates and collinear runs are the
// classic kd-tree stress cases).
type pointSet []geom.Point

func (pointSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size*8 + 1)
	scale := []float64{1, 100, 1e4}[r.Intn(3)]
	pts := make(pointSet, n)
	for i := range pts {
		switch r.Intn(10) {
		case 0: // duplicate an earlier point
			if i > 0 {
				pts[i] = pts[r.Intn(i)]
				continue
			}
			fallthrough
		case 1: // collinear on y=0
			pts[i] = geom.Point{X: r.Float64() * scale}
		default:
			pts[i] = geom.Point{X: r.Float64() * scale, Y: r.Float64() * scale}
		}
	}
	return reflect.ValueOf(pts)
}

// Property: RangeCount always agrees with the brute-force count, for any
// point cloud, center, and radius.
func TestQuickRangeCountInvariant(t *testing.T) {
	f := func(pts pointSet, cx, cy, rad float64) bool {
		q := geom.Point{X: cx * 100, Y: cy * 100}
		r := rad * rad * 50 // non-negative, varied magnitude
		tr := New(pts)
		want := 0
		for _, p := range pts {
			if p.Dist2(q) <= r*r {
				want++
			}
		}
		return tr.RangeCount(q, r) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Len is preserved and RangeCount with an enormous radius counts
// every point.
func TestQuickFullCoverInvariant(t *testing.T) {
	f := func(pts pointSet) bool {
		tr := New(pts)
		if tr.Len() != len(pts) {
			return false
		}
		return tr.RangeCount(geom.Point{}, 1e9) == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: KNearest returns sorted distances and exactly min(k, n)
// results, and its worst distance never beats brute force.
func TestQuickKNearestInvariant(t *testing.T) {
	f := func(pts pointSet, qx, qy float64, kRaw uint8) bool {
		if len(pts) == 0 {
			return true
		}
		k := int(kRaw)%len(pts) + 1
		q := geom.Point{X: qx * 100, Y: qy * 100}
		tr := New(pts)
		idx, d2 := tr.KNearest(q, k, nil)
		if len(idx) != k {
			return false
		}
		for i := 1; i < len(d2); i++ {
			if d2[i] < d2[i-1] {
				return false
			}
		}
		// Count of points strictly closer than the kth must be < k.
		closer := 0
		for _, p := range pts {
			if p.Dist2(q) < d2[k-1]-1e-12 {
				closer++
			}
		}
		return closer < k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
