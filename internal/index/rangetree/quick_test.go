package rangetree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"geostat/internal/geom"
)

// Property (testing/quick): CountRect equals brute force for arbitrary
// clouds (with duplicate coordinates) and arbitrary rectangles, including
// inverted and empty ones.
func TestQuickCountRect(t *testing.T) {
	type query struct {
		X0, X1, Y0, Y1 float64
	}
	f := func(pts []geom.Point, q query) bool {
		tr := New(pts)
		want := 0
		for _, p := range pts {
			if p.X >= q.X0 && p.X <= q.X1 && p.Y >= q.Y0 && p.Y <= q.Y1 {
				want++
			}
		}
		return tr.CountRect(q.X0, q.X1, q.Y0, q.Y1) == want
	}
	cfg := &quick.Config{
		MaxCount: 400,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := r.Intn(200)
			pts := make([]geom.Point, n)
			for i := range pts {
				// Snap coordinates to a small lattice: duplicate x and y
				// values are the range tree's interesting case.
				pts[i] = geom.Point{
					X: float64(r.Intn(20)),
					Y: float64(r.Intn(20)),
				}
			}
			args[0] = reflect.ValueOf(pts)
			q := query{
				X0: float64(r.Intn(25) - 2), Y0: float64(r.Intn(25) - 2),
			}
			q.X1 = q.X0 + float64(r.Intn(12)-2) // sometimes inverted
			q.Y1 = q.Y0 + float64(r.Intn(12)-2)
			args[1] = reflect.ValueOf(q)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: counts are monotone under rectangle growth.
func TestQuickMonotoneGrowth(t *testing.T) {
	f := func(pts []geom.Point, grow float64) bool {
		tr := New(pts)
		small := tr.CountRect(5, 10, 5, 10)
		g := 1 + grow
		big := tr.CountRect(5-g, 10+g, 5-g, 10+g)
		return big >= small
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := r.Intn(300)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Point{X: r.Float64() * 15, Y: r.Float64() * 15}
			}
			args[0] = reflect.ValueOf(pts)
			args[1] = reflect.ValueOf(r.Float64() * 5)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
