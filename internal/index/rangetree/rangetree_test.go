package rangetree

import (
	"math/rand"
	"testing"

	"geostat/internal/geom"
)

func randomPoints(r *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
	}
	return pts
}

func bruteCount(pts []geom.Point, x0, x1, y0, y1 float64) int {
	c := 0
	for _, p := range pts {
		if p.X >= x0 && p.X <= x1 && p.Y >= y0 && p.Y <= y1 {
			c++
		}
	}
	return c
}

func TestEmpty(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.CountRect(0, 100, 0, 100); got != 0 {
		t.Errorf("CountRect = %d", got)
	}
}

func TestInvertedRect(t *testing.T) {
	tr := New([]geom.Point{{X: 5, Y: 5}})
	if got := tr.CountRect(10, 0, 0, 10); got != 0 {
		t.Errorf("inverted x-range: %d", got)
	}
	if got := tr.CountRect(0, 10, 10, 0); got != 0 {
		t.Errorf("inverted y-range: %d", got)
	}
}

func TestCountRectMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 8, 9, 31, 32, 33, 500, 2048} {
		pts := randomPoints(r, n)
		tr := New(pts)
		for trial := 0; trial < 150; trial++ {
			x0 := r.Float64()*120 - 10
			x1 := x0 + r.Float64()*60
			y0 := r.Float64()*120 - 10
			y1 := y0 + r.Float64()*60
			want := bruteCount(pts, x0, x1, y0, y1)
			if got := tr.CountRect(x0, x1, y0, y1); got != want {
				t.Fatalf("n=%d: CountRect(%v,%v,%v,%v) = %d, want %d",
					n, x0, x1, y0, y1, got, want)
			}
		}
	}
}

func TestBoundaryInclusive(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}
	tr := New(pts)
	if got := tr.CountRect(1, 3, 1, 3); got != 3 {
		t.Errorf("inclusive bounds = %d, want 3", got)
	}
	if got := tr.CountRect(2, 2, 2, 2); got != 1 {
		t.Errorf("point rect = %d, want 1", got)
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	var pts []geom.Point
	for i := 0; i < 64; i++ {
		pts = append(pts, geom.Point{X: 7, Y: float64(i % 4)})
	}
	tr := New(pts)
	if got := tr.CountRect(7, 7, 1, 2); got != 32 {
		t.Errorf("duplicate-x count = %d, want 32", got)
	}
	if got := tr.CountRect(6.5, 7.5, -1, 10); got != 64 {
		t.Errorf("all count = %d, want 64", got)
	}
}

func TestFullPlaneCountsAll(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 100, 777} {
		pts := randomPoints(r, n)
		tr := New(pts)
		if got := tr.CountRect(-1e9, 1e9, -1e9, 1e9); got != n {
			t.Errorf("n=%d: full-plane count = %d", n, got)
		}
	}
}
