// Package rangetree implements a static 2-D range tree (de Berg et al. [40]
// in the paper) for axis-aligned rectangle counting in O(log² n) per query.
// The K-function needs disc counts, but rectangle counting is the classic
// range-tree workload and serves two roles here: (1) a conservative
// pre-filter bracketing a disc between its inscribed and circumscribed
// squares, and (2) the counting substrate for workloads where the query
// region genuinely is a rectangle (e.g. the temporal axis of the
// spatiotemporal tools).
//
// Layout: a perfectly balanced implicit tree over points sorted by x; every
// node stores the sorted y-slice of its subtree. Counting a rectangle
// decomposes [x0,x1] into O(log n) canonical nodes and binary-searches each
// node's y-slice: O(log² n) per query, O(n log n) space.
package rangetree

import (
	"sort"

	"geostat/internal/geom"
)

// Tree is an immutable 2-D range tree. Build with New.
type Tree struct {
	xs    []float64   // points sorted by x (primary key), then y
	ys    []float64   // y of the x-sorted points
	level [][]float64 // level[d] = concatenated sorted-y slices of depth-d nodes
	n     int
}

// New builds a range tree over pts in O(n log n).
func New(pts []geom.Point) *Tree {
	n := len(pts)
	t := &Tree{n: n}
	if n == 0 {
		return t
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		//lint:allow floateq sort tie-break on stored coordinates; exact comparison intended
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	t.xs = make([]float64, n)
	t.ys = make([]float64, n)
	for i, oi := range order {
		t.xs[i] = pts[oi].X
		t.ys[i] = pts[oi].Y
	}
	// Build levels bottom-up by merging: level d covers segments of length
	// 2^d (the leaves are the x-sorted singleton ys). We store sorted-y
	// arrays for every power-of-two segmentation — a "merge sort tree".
	cur := append([]float64(nil), t.ys...)
	t.level = append(t.level, append([]float64(nil), cur...))
	for size := 1; size < n; size *= 2 {
		next := make([]float64, n)
		for lo := 0; lo < n; lo += 2 * size {
			mid := min(lo+size, n)
			hi := min(lo+2*size, n)
			mergeSorted(next[lo:hi], cur[lo:mid], cur[mid:hi])
		}
		cur = next
		t.level = append(t.level, append([]float64(nil), cur...))
	}
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.n }

// CountRect returns the number of points with x in [x0, x1] and y in
// [y0, y1] (all bounds inclusive).
func (t *Tree) CountRect(x0, x1, y0, y1 float64) int {
	if t.n == 0 || x0 > x1 || y0 > y1 {
		return 0
	}
	// x-range to index range [lo, hi) in the x-sorted order.
	lo := sort.SearchFloat64s(t.xs, x0)
	hi := sort.Search(t.n, func(i int) bool { return t.xs[i] > x1 })
	return t.countYRange(lo, hi, y0, y1)
}

// countYRange counts points with index in [lo, hi) (x-sorted order) and y
// in [y0, y1], by decomposing [lo, hi) into maximal aligned power-of-two
// segments and binary-searching each segment's sorted-y slice.
func (t *Tree) countYRange(lo, hi int, y0, y1 float64) int {
	count := 0
	for lo < hi {
		// Largest aligned block starting at lo that fits in [lo, hi).
		d := trailingOnes(lo, hi)
		seg := 1 << d
		ys := t.level[d][lo : lo+min(seg, hi-lo)]
		// The stored block covers indices [lo, lo+seg) but a partial tail
		// block (hi not aligned) isn't a complete node at this level;
		// trailingOnes only returns d with lo+2^d <= hi and lo aligned, so
		// ys is exactly the node's slice.
		count += countSorted(ys, y0, y1)
		lo += seg
	}
	return count
}

// trailingOnes returns the largest d such that lo is a multiple of 2^d and
// lo + 2^d <= hi.
func trailingOnes(lo, hi int) int {
	d := 0
	for {
		if lo&((1<<(d+1))-1) != 0 {
			break
		}
		if lo+(1<<(d+1)) > hi {
			break
		}
		d++
	}
	return d
}

// countSorted counts values in the sorted slice ys lying in [y0, y1].
func countSorted(ys []float64, y0, y1 float64) int {
	a := sort.SearchFloat64s(ys, y0)
	b := sort.Search(len(ys), func(i int) bool { return ys[i] > y1 })
	return b - a
}

func mergeSorted(dst, a, b []float64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
