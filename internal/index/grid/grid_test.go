package grid

import (
	"math/rand"
	"sort"
	"testing"

	"geostat/internal/geom"
)

func randomPoints(r *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
	}
	return pts
}

func TestEmptyIndex(t *testing.T) {
	g := New(nil, 5)
	if g.Len() != 0 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got := g.RangeCount(geom.Point{}, 100); got != 0 {
		t.Errorf("RangeCount = %d", got)
	}
	if got := g.RangeQuery(geom.Point{}, 100, nil); len(got) != 0 {
		t.Errorf("RangeQuery = %v", got)
	}
	g.ForEachInRange(geom.Point{}, 100, func(int, float64) { t.Error("callback on empty index") })
}

func TestRangeCountMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 10, 500, 3000} {
		for _, cell := range []float64{0.5, 5, 50, 500} {
			pts := randomPoints(r, n)
			g := New(pts, cell)
			for trial := 0; trial < 60; trial++ {
				q := geom.Point{X: r.Float64()*140 - 20, Y: r.Float64()*140 - 20}
				rad := r.Float64() * 30
				want := 0
				for _, p := range pts {
					if p.Dist2(q) <= rad*rad {
						want++
					}
				}
				if got := g.RangeCount(q, rad); got != want {
					t.Fatalf("n=%d cell=%v: RangeCount(%v,%v)=%d, want %d", n, cell, q, rad, got, want)
				}
			}
		}
	}
}

func TestRangeQueryAndForEachAgree(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randomPoints(r, 800)
	g := New(pts, 7)
	for trial := 0; trial < 50; trial++ {
		q := geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		rad := r.Float64() * 25
		got := g.RangeQuery(q, rad, nil)
		sort.Ints(got)
		var each []int
		g.ForEachInRange(q, rad, func(i int, d2 float64) {
			if d2 > rad*rad {
				t.Fatalf("ForEachInRange leaked d2=%v > r²=%v", d2, rad*rad)
			}
			if dd := pts[i].Dist2(q); dd != d2 {
				t.Fatalf("reported d2 %v != actual %v", d2, dd)
			}
			each = append(each, i)
		})
		sort.Ints(each)
		if len(got) != len(each) {
			t.Fatalf("RangeQuery %d vs ForEach %d", len(got), len(each))
		}
		for i := range got {
			if got[i] != each[i] {
				t.Fatalf("mismatch at %d: %d vs %d", i, got[i], each[i])
			}
		}
		if want := g.RangeCount(q, rad); want != len(got) {
			t.Fatalf("RangeCount %d vs RangeQuery %d", want, len(got))
		}
	}
}

func TestZeroRadius(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 1, Y: 1}}
	g := New(pts, 1)
	if got := g.RangeCount(geom.Point{X: 1, Y: 1}, 0); got != 2 {
		t.Errorf("zero-radius count at duplicate = %d, want 2", got)
	}
	if got := g.RangeCount(geom.Point{X: 1.5, Y: 1.5}, -1); got != 0 {
		t.Errorf("negative radius count = %d, want 0", got)
	}
}

func TestSinglePointAndDegenerateExtent(t *testing.T) {
	pts := []geom.Point{{X: 5, Y: 5}}
	g := New(pts, 2)
	if got := g.RangeCount(geom.Point{X: 5, Y: 5}, 0.1); got != 1 {
		t.Errorf("count = %d", got)
	}
	// All points on a vertical line: width 0.
	var line []geom.Point
	for i := 0; i < 50; i++ {
		line = append(line, geom.Point{X: 3, Y: float64(i)})
	}
	g = New(line, 5)
	if got := g.RangeCount(geom.Point{X: 3, Y: 25}, 5.5); got != 11 {
		t.Errorf("line count = %d, want 11", got)
	}
}

func TestAutoCellSize(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randomPoints(r, 100)
	g := New(pts, 0) // invalid cell size: falls back to one cell
	if got, want := g.RangeCount(geom.Point{X: 50, Y: 50}, 200), 100; got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
}

func TestCellCapClamp(t *testing.T) {
	// A tiny cell size over a wide extent must not explode memory; the
	// constructor clamps total cells.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1e6, Y: 1e6}}
	g := New(pts, 1e-6)
	if got := g.RangeCount(geom.Point{X: 0, Y: 0}, 1); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
}
