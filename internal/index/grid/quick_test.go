package grid

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"geostat/internal/geom"
)

// cloud generates point clouds with skewed densities (all mass in one
// corner is the grid index's worst case).
type cloud struct {
	Pts  []geom.Point
	Cell float64
}

func (cloud) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size*8 + 1)
	c := cloud{Cell: []float64{0.1, 1, 10, 1000}[r.Intn(4)]}
	skew := r.Intn(3) == 0
	for i := 0; i < n; i++ {
		p := geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		if skew {
			p = geom.Point{X: r.Float64(), Y: r.Float64()} // everything in one cell region
		}
		c.Pts = append(c.Pts, p)
	}
	return reflect.ValueOf(c)
}

// Property: grid RangeCount equals brute force for arbitrary cell sizes,
// query centers (possibly far outside the data), and radii.
func TestQuickRangeCount(t *testing.T) {
	f := func(c cloud, qx, qy, rad float64) bool {
		g := New(c.Pts, c.Cell)
		q := geom.Point{X: qx*300 - 100, Y: qy*300 - 100}
		r := rad * rad * 60
		want := 0
		for _, p := range c.Pts {
			if p.Dist2(q) <= r*r {
				want++
			}
		}
		return g.RangeCount(q, r) == want
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = cloud{}.Generate(r, 20)
			for i := 1; i < 4; i++ {
				args[i] = reflect.ValueOf(r.Float64())
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: RangeQuery returns exactly the points RangeCount counts, each
// exactly once.
func TestQuickRangeQueryConsistent(t *testing.T) {
	f := func(c cloud, qx, qy, rad float64) bool {
		g := New(c.Pts, c.Cell)
		q := geom.Point{X: qx * 100, Y: qy * 100}
		r := rad * 40
		got := g.RangeQuery(q, r, nil)
		seen := make(map[int]bool, len(got))
		for _, i := range got {
			if seen[i] {
				return false // duplicate
			}
			seen[i] = true
			if c.Pts[i].Dist2(q) > r*r {
				return false // out of range
			}
		}
		return len(got) == g.RangeCount(q, r)
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = cloud{}.Generate(r, 20)
			for i := 1; i < 4; i++ {
				args[i] = reflect.ValueOf(r.Float64())
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
