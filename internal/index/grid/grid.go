// Package grid implements a uniform grid (bucket) index over a point
// dataset. For the paper's workloads — range counting at a fixed radius
// (K-function, Equation 2) and kernel support scans at a fixed bandwidth
// (cutoff KDV) — a grid with cell size matched to the query radius gives
// O(1 + k) per query on non-adversarial data and is the workhorse exact
// accelerator in this repository.
package grid

import (
	"math"

	"geostat/internal/geom"
)

// Index is a uniform grid over a point set. Build with New.
type Index struct {
	pts     []geom.Point
	box     geom.BBox
	nx, ny  int
	cellW   float64
	cellH   float64
	cellPts []int32 // point indices grouped by cell (counting-sort layout)
	cellOff []int32 // cellOff[c]..cellOff[c+1] bounds cell c's slice of cellPts
	// sortedX/sortedY are the point coordinates in cellPts order — cell-local
	// SoA columns so range scans stream contiguous memory instead of chasing
	// cellPts indirections into the AoS point slice.
	sortedX []float64
	sortedY []float64
}

// New builds a grid index over pts with cells of approximately cellSize on
// a side (clamped so the grid has at least one and at most ~4M cells).
// cellSize should match the dominant query radius; r == cellSize means a
// disc query touches at most 9 cells of candidates.
func New(pts []geom.Point, cellSize float64) *Index {
	g := &Index{pts: pts, box: geom.NewBBox(pts)}
	if len(pts) == 0 {
		g.nx, g.ny = 1, 1
		g.cellW, g.cellH = 1, 1
		g.cellOff = make([]int32, 2)
		return g
	}
	w := math.Max(g.box.Width(), 1e-12)
	h := math.Max(g.box.Height(), 1e-12)
	if !(cellSize > 0) {
		cellSize = math.Max(w, h)
	}
	const maxCells = 1 << 22
	g.nx = clampInt(int(math.Ceil(w/cellSize)), 1, maxCells)
	g.ny = clampInt(int(math.Ceil(h/cellSize)), 1, maxCells)
	for g.nx*g.ny > maxCells {
		if g.nx >= g.ny {
			g.nx = (g.nx + 1) / 2
		} else {
			g.ny = (g.ny + 1) / 2
		}
	}
	g.cellW = w / float64(g.nx)
	g.cellH = h / float64(g.ny)

	// Counting sort points into cells.
	ncells := g.nx * g.ny
	counts := make([]int32, ncells+1)
	cellOf := make([]int32, len(pts))
	for i, p := range pts {
		c := int32(g.cellIndex(p))
		cellOf[i] = c
		counts[c+1]++
	}
	for c := 0; c < ncells; c++ {
		counts[c+1] += counts[c]
	}
	g.cellOff = counts
	g.cellPts = make([]int32, len(pts))
	cursor := make([]int32, ncells)
	for i := range pts {
		c := cellOf[i]
		g.cellPts[g.cellOff[c]+cursor[c]] = int32(i)
		cursor[c]++
	}
	g.sortedX = make([]float64, len(pts))
	g.sortedY = make([]float64, len(pts))
	for j, pi := range g.cellPts {
		g.sortedX[j] = pts[pi].X
		g.sortedY[j] = pts[pi].Y
	}
	return g
}

// Len returns the number of indexed points.
func (g *Index) Len() int { return len(g.pts) }

// Bounds returns the bounding box of the indexed points.
func (g *Index) Bounds() geom.BBox { return g.box }

// CellSize returns the grid's cell dimensions.
func (g *Index) CellSize() (w, h float64) { return g.cellW, g.cellH }

func (g *Index) cellIndex(p geom.Point) int {
	cx := clampInt(int((p.X-g.box.MinX)/g.cellW), 0, g.nx-1)
	cy := clampInt(int((p.Y-g.box.MinY)/g.cellH), 0, g.ny-1)
	return cy*g.nx + cx
}

// cellRange returns the inclusive cell coordinate ranges overlapping the
// square of half-side r around q.
func (g *Index) cellRange(q geom.Point, r float64) (cx0, cx1, cy0, cy1 int) {
	cx0 = clampInt(int((q.X-r-g.box.MinX)/g.cellW), 0, g.nx-1)
	cx1 = clampInt(int((q.X+r-g.box.MinX)/g.cellW), 0, g.nx-1)
	cy0 = clampInt(int((q.Y-r-g.box.MinY)/g.cellH), 0, g.ny-1)
	cy1 = clampInt(int((q.Y+r-g.box.MinY)/g.cellH), 0, g.ny-1)
	return
}

// RangeCount returns the number of points within distance r of q
// (boundary inclusive). Cells entirely inside the disc are counted without
// touching their points; boundary cells are scanned.
func (g *Index) RangeCount(q geom.Point, r float64) int {
	if len(g.pts) == 0 || r < 0 {
		return 0
	}
	r2 := r * r
	cx0, cx1, cy0, cy1 := g.cellRange(q, r)
	count := 0
	for cy := cy0; cy <= cy1; cy++ {
		rowBase := cy * g.nx
		for cx := cx0; cx <= cx1; cx++ {
			c := rowBase + cx
			lo, hi := g.cellOff[c], g.cellOff[c+1]
			if lo == hi {
				continue
			}
			if g.cellInside(cx, cy, q, r2) {
				count += int(hi - lo)
				continue
			}
			for _, pi := range g.cellPts[lo:hi] {
				if g.pts[pi].Dist2(q) <= r2 {
					count++
				}
			}
		}
	}
	return count
}

// RangeQuery appends the indices of all points within distance r of q to
// dst and returns the extended slice.
func (g *Index) RangeQuery(q geom.Point, r float64, dst []int) []int {
	if len(g.pts) == 0 || r < 0 {
		return dst
	}
	r2 := r * r
	cx0, cx1, cy0, cy1 := g.cellRange(q, r)
	for cy := cy0; cy <= cy1; cy++ {
		rowBase := cy * g.nx
		for cx := cx0; cx <= cx1; cx++ {
			c := rowBase + cx
			for _, pi := range g.cellPts[g.cellOff[c]:g.cellOff[c+1]] {
				if g.pts[pi].Dist2(q) <= r2 {
					dst = append(dst, int(pi))
				}
			}
		}
	}
	return dst
}

// ForEachInRange calls fn with the index and squared distance of every
// point within distance r of q. It is the allocation-free core used by the
// KDV cutoff algorithm (fn accumulates kernel values directly).
func (g *Index) ForEachInRange(q geom.Point, r float64, fn func(i int, d2 float64)) {
	if len(g.pts) == 0 || r < 0 {
		return
	}
	r2 := r * r
	cx0, cx1, cy0, cy1 := g.cellRange(q, r)
	for cy := cy0; cy <= cy1; cy++ {
		rowBase := cy * g.nx
		for cx := cx0; cx <= cx1; cx++ {
			c := rowBase + cx
			for _, pi := range g.cellPts[g.cellOff[c]:g.cellOff[c+1]] {
				if d2 := g.pts[pi].Dist2(q); d2 <= r2 {
					fn(int(pi), d2)
				}
			}
		}
	}
}

// Columns returns the index's cell-ordered coordinate columns and the
// original point index of each slot: xs[j], ys[j] are the coordinates of
// point ids[j], with points grouped by cell in the same order
// ForEachInRange visits them. Combined with CellSpan and Cell this lets
// hot loops iterate candidates closure-free over contiguous memory. The
// slices are the index's own storage — read-only.
func (g *Index) Columns() (xs, ys []float64, ids []int32) {
	return g.sortedX, g.sortedY, g.cellPts
}

// CellSpan returns the inclusive cell-coordinate ranges overlapping the
// square of half-side r around q (the candidate cells of a radius-r query).
func (g *Index) CellSpan(q geom.Point, r float64) (cx0, cx1, cy0, cy1 int) {
	return g.cellRange(q, r)
}

// Cell returns cell (cx, cy)'s half-open slot range [lo, hi) into the
// Columns slices.
func (g *Index) Cell(cx, cy int) (lo, hi int) {
	c := cy*g.nx + cx
	return int(g.cellOff[c]), int(g.cellOff[c+1])
}

// cellInside reports whether cell (cx, cy) lies entirely within the disc of
// squared radius r2 around q.
func (g *Index) cellInside(cx, cy int, q geom.Point, r2 float64) bool {
	x0 := g.box.MinX + float64(cx)*g.cellW
	y0 := g.box.MinY + float64(cy)*g.cellH
	b := geom.BBox{MinX: x0, MinY: y0, MaxX: x0 + g.cellW, MaxY: y0 + g.cellH}
	return b.MaxDist2(q) <= r2
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
