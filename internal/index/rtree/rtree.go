// Package rtree implements a static, STR-bulk-loaded R-tree over points —
// the index family underlying production GIS engines (PostGIS, Sedona,
// GeoMesa) that the paper's software-development discussion targets.
// Sort-Tile-Recursive packing produces near-square leaf tiles, giving range
// performance competitive with the kd-tree while keeping the node layout
// the one spatial databases use.
package rtree

import (
	"math"
	"sort"

	"geostat/internal/geom"
)

const fanout = 16 // entries per node (leaf points or child nodes)

// Tree is an immutable STR-packed R-tree. Build with New.
type Tree struct {
	pts   []geom.Point // leaf points, tile order
	idx   []int        // original indices, parallel to pts
	nodes []node
	root  int32 // -1 when empty
}

// node covers pts[lo:hi) (leaves) or children[childLo:childHi) (internal).
type node struct {
	box      geom.BBox
	lo, hi   int32 // leaf point range; only for leaves
	children []int32
}

// New bulk-loads an R-tree over pts with Sort-Tile-Recursive packing:
// points are sorted by x, cut into vertical slices of ~√(n/fanout) tiles,
// each slice sorted by y and cut into leaf tiles of `fanout` points;
// the packing recurses over the tile MBRs.
func New(pts []geom.Point) *Tree {
	t := &Tree{
		pts:  append([]geom.Point(nil), pts...),
		idx:  make([]int, len(pts)),
		root: -1,
	}
	for i := range t.idx {
		t.idx[i] = i
	}
	if len(pts) == 0 {
		return t
	}
	// STR leaf packing.
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pts[order[a]].X < pts[order[b]].X })
	nLeaves := (len(pts) + fanout - 1) / fanout
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := (len(pts) + nSlices - 1) / nSlices
	// Within each x-slice, order by y.
	for s := 0; s < len(order); s += sliceSize {
		e := s + sliceSize
		if e > len(order) {
			e = len(order)
		}
		sl := order[s:e]
		sort.Slice(sl, func(a, b int) bool { return pts[sl[a]].Y < pts[sl[b]].Y })
	}
	// Materialise tile order.
	for i, oi := range order {
		t.pts[i] = pts[oi]
		t.idx[i] = oi
	}
	// Leaf nodes over consecutive fanout-sized runs.
	var level []int32
	for lo := 0; lo < len(t.pts); lo += fanout {
		hi := lo + fanout
		if hi > len(t.pts) {
			hi = len(t.pts)
		}
		t.nodes = append(t.nodes, node{
			box: geom.NewBBox(t.pts[lo:hi]),
			lo:  int32(lo), hi: int32(hi),
		})
		level = append(level, int32(len(t.nodes)-1))
	}
	// Pack upper levels until a single root remains.
	for len(level) > 1 {
		var next []int32
		for lo := 0; lo < len(level); lo += fanout {
			hi := lo + fanout
			if hi > len(level) {
				hi = len(level)
			}
			children := append([]int32(nil), level[lo:hi]...)
			box := geom.EmptyBBox()
			for _, c := range children {
				box = box.Union(t.nodes[c].box)
			}
			t.nodes = append(t.nodes, node{box: box, children: children})
			next = append(next, int32(len(t.nodes)-1))
		}
		level = next
	}
	t.root = level[0]
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Bounds returns the root MBR.
func (t *Tree) Bounds() geom.BBox {
	if t.root < 0 {
		return geom.EmptyBBox()
	}
	return t.nodes[t.root].box
}

// RangeCount returns the number of points within distance r of q
// (boundary inclusive).
func (t *Tree) RangeCount(q geom.Point, r float64) int {
	if t.root < 0 || r < 0 {
		return 0
	}
	return t.rangeCount(t.root, q, r*r)
}

func (t *Tree) rangeCount(ni int32, q geom.Point, r2 float64) int {
	n := &t.nodes[ni]
	if n.box.MinDist2(q) > r2 {
		return 0
	}
	if n.box.MaxDist2(q) <= r2 {
		return t.subtreeSize(ni)
	}
	if n.children == nil {
		c := 0
		for _, p := range t.pts[n.lo:n.hi] {
			if p.Dist2(q) <= r2 {
				c++
			}
		}
		return c
	}
	total := 0
	for _, c := range n.children {
		total += t.rangeCount(c, q, r2)
	}
	return total
}

func (t *Tree) subtreeSize(ni int32) int {
	n := &t.nodes[ni]
	if n.children == nil {
		return int(n.hi - n.lo)
	}
	total := 0
	for _, c := range n.children {
		total += t.subtreeSize(c)
	}
	return total
}

// SearchRect appends the original indices of all points inside the box
// (boundary inclusive) and returns the extended slice — the native R-tree
// window query.
func (t *Tree) SearchRect(box geom.BBox, dst []int) []int {
	if t.root < 0 || box.IsEmpty() {
		return dst
	}
	return t.searchRect(t.root, box, dst)
}

func (t *Tree) searchRect(ni int32, box geom.BBox, dst []int) []int {
	n := &t.nodes[ni]
	if !n.box.Intersects(box) {
		return dst
	}
	if n.children == nil {
		for i := n.lo; i < n.hi; i++ {
			if box.Contains(t.pts[i]) {
				dst = append(dst, t.idx[i])
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = t.searchRect(c, box, dst)
	}
	return dst
}

// RangeQuery appends the original indices of all points within distance r
// of q and returns the extended slice.
func (t *Tree) RangeQuery(q geom.Point, r float64, dst []int) []int {
	if t.root < 0 || r < 0 {
		return dst
	}
	return t.rangeQuery(t.root, q, r*r, dst)
}

func (t *Tree) rangeQuery(ni int32, q geom.Point, r2 float64, dst []int) []int {
	n := &t.nodes[ni]
	if n.box.MinDist2(q) > r2 {
		return dst
	}
	if n.children == nil {
		for i := n.lo; i < n.hi; i++ {
			if t.pts[i].Dist2(q) <= r2 {
				dst = append(dst, t.idx[i])
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = t.rangeQuery(c, q, r2, dst)
	}
	return dst
}
