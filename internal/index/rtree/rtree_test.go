package rtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"geostat/internal/geom"
)

func randomPoints(r *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
	}
	return pts
}

func TestEmpty(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.RangeCount(geom.Point{}, 5) != 0 {
		t.Error("count on empty")
	}
	if got := tr.SearchRect(geom.BBox{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, nil); len(got) != 0 {
		t.Error("rect on empty")
	}
	if !tr.Bounds().IsEmpty() {
		t.Error("bounds on empty")
	}
}

func TestRangeCountMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 15, 16, 17, 255, 256, 257, 2000} {
		pts := randomPoints(r, n)
		tr := New(pts)
		if tr.Len() != n {
			t.Fatalf("Len = %d", tr.Len())
		}
		for trial := 0; trial < 80; trial++ {
			q := geom.Point{X: r.Float64()*140 - 20, Y: r.Float64()*140 - 20}
			rad := r.Float64() * 40
			want := 0
			for _, p := range pts {
				if p.Dist2(q) <= rad*rad {
					want++
				}
			}
			if got := tr.RangeCount(q, rad); got != want {
				t.Fatalf("n=%d: RangeCount = %d, want %d", n, got, want)
			}
		}
	}
}

func TestSearchRectMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randomPoints(r, 1200)
	tr := New(pts)
	for trial := 0; trial < 100; trial++ {
		box := geom.BBox{MinX: r.Float64() * 90, MinY: r.Float64() * 90}
		box.MaxX = box.MinX + r.Float64()*30
		box.MaxY = box.MinY + r.Float64()*30
		got := tr.SearchRect(box, nil)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if box.Contains(p) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("rect size %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rect idx mismatch at %d", i)
			}
		}
	}
}

func TestRangeQueryMatchesCount(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randomPoints(r, 700)
	tr := New(pts)
	for trial := 0; trial < 60; trial++ {
		q := geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		rad := r.Float64() * 25
		got := tr.RangeQuery(q, rad, nil)
		if len(got) != tr.RangeCount(q, rad) {
			t.Fatalf("query %d vs count %d", len(got), tr.RangeCount(q, rad))
		}
		for _, i := range got {
			if pts[i].Dist2(q) > rad*rad {
				t.Fatal("out-of-range index returned")
			}
		}
	}
}

func TestDuplicatesAndCollinear(t *testing.T) {
	pts := make([]geom.Point, 300)
	for i := range pts {
		switch {
		case i < 100:
			pts[i] = geom.Point{X: 5, Y: 5}
		default:
			pts[i] = geom.Point{X: float64(i), Y: 0}
		}
	}
	tr := New(pts)
	if got := tr.RangeCount(geom.Point{X: 5, Y: 5}, 0); got != 100 {
		t.Errorf("duplicates = %d", got)
	}
	if got := tr.RangeCount(geom.Point{X: 200, Y: 0}, 10.5); got != 21 {
		t.Errorf("collinear = %d, want 21", got)
	}
}

// testing/quick: STR packing must not lose or duplicate points for any
// cloud shape.
func TestQuickFullCover(t *testing.T) {
	f := func(pts []geom.Point) bool {
		tr := New(pts)
		all := tr.SearchRect(geom.BBox{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9}, nil)
		if len(all) != len(pts) {
			return false
		}
		seen := make(map[int]bool, len(all))
		for _, i := range all {
			if seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomPoints(r, r.Intn(600)))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
