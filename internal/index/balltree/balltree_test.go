package balltree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"geostat/internal/geom"
)

func randomPoints(r *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
	}
	return pts
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.RangeCount(geom.Point{}, 5); got != 0 {
		t.Errorf("RangeCount = %d", got)
	}
	if got := tr.RangeQuery(geom.Point{}, 5, nil); len(got) != 0 {
		t.Errorf("RangeQuery = %v", got)
	}
	tr.Visit(geom.Point{}, func(float64, float64, int) bool {
		t.Error("Visit on empty tree")
		return false
	}, nil)
}

func TestRangeCountMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 15, 16, 17, 300, 2000} {
		pts := randomPoints(r, n)
		tr := New(pts)
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		for trial := 0; trial < 100; trial++ {
			q := geom.Point{X: r.Float64()*140 - 20, Y: r.Float64()*140 - 20}
			rad := r.Float64() * 35
			want := 0
			for _, p := range pts {
				if p.Dist2(q) <= rad*rad {
					want++
				}
			}
			if got := tr.RangeCount(q, rad); got != want {
				t.Fatalf("n=%d: RangeCount(%v,%v) = %d, want %d", n, q, rad, got, want)
			}
		}
	}
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randomPoints(r, 600)
	tr := New(pts)
	for trial := 0; trial < 80; trial++ {
		q := geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		rad := r.Float64() * 25
		got := tr.RangeQuery(q, rad, nil)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if p.Dist2(q) <= rad*rad {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("size %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("idx mismatch at %d", i)
			}
		}
	}
}

func TestAllIdenticalPoints(t *testing.T) {
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Point{X: -4, Y: 9}
	}
	tr := New(pts) // exercises the degenerate-split guard
	if got := tr.RangeCount(geom.Point{X: -4, Y: 9}, 0); got != 200 {
		t.Errorf("count = %d, want 200", got)
	}
}

// Property: Visit's (dMin, dMax) brackets the true distance of every point
// in the node.
func TestVisitBracketsAreSound(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randomPoints(r, 500)
	tr := New(pts)
	for trial := 0; trial < 20; trial++ {
		q := geom.Point{X: r.Float64()*200 - 50, Y: r.Float64()*200 - 50}
		type frame struct{ dMin, dMax float64 }
		var stack []frame
		seen := 0
		tr.Visit(q,
			func(dMin, dMax float64, count int) bool {
				if dMin < 0 || dMax < dMin {
					t.Fatalf("bad bracket [%v, %v]", dMin, dMax)
				}
				stack = append(stack, frame{dMin, dMax})
				return true
			},
			func(p geom.Point) {
				seen++
				d := p.Dist(q)
				// The most recent bracket must contain d (leaf node's bracket).
				f := stack[len(stack)-1]
				if d < f.dMin-1e-9 || d > f.dMax+1e-9 {
					t.Fatalf("point dist %v outside leaf bracket [%v, %v]", d, f.dMin, f.dMax)
				}
			},
		)
		if seen != len(pts) {
			t.Fatalf("Visit saw %d points, want %d", seen, len(pts))
		}
	}
}

// Property (testing/quick style): counts from ball-tree and a shuffled
// rebuild agree — the structure must not depend on input order.
func TestOrderIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randomPoints(r, 400)
	shuffled := append([]geom.Point(nil), pts...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	t1, t2 := New(pts), New(shuffled)
	for trial := 0; trial < 100; trial++ {
		q := geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		rad := math.Abs(r.NormFloat64()) * 20
		if a, b := t1.RangeCount(q, rad), t2.RangeCount(q, rad); a != b {
			t.Fatalf("order-dependent counts: %d vs %d", a, b)
		}
	}
}
