// Package balltree implements a ball-tree (Moore's anchors hierarchy [71]
// in the paper): a binary tree whose nodes are bounding balls
// (center, radius). Ball nodes give tighter distance brackets than
// axis-aligned boxes on spherical clusters, which is why the
// function-approximation KDE literature the paper reviews uses both.
package balltree

import (
	"math"

	"geostat/internal/geom"
)

// Tree is an immutable ball-tree. Build with New.
type Tree struct {
	pts   []geom.Point
	idx   []int
	nodes []node
}

type node struct {
	center      geom.Point
	radius      float64
	lo, hi      int
	left, right int32
}

const leafSize = 16

// New builds a ball-tree over pts in O(n log n). The input slice is copied.
func New(pts []geom.Point) *Tree {
	t := &Tree{
		pts: append([]geom.Point(nil), pts...),
		idx: make([]int, len(pts)),
	}
	for i := range t.idx {
		t.idx[i] = i
	}
	if len(pts) == 0 {
		return t
	}
	t.nodes = make([]node, 0, 2*(len(pts)/leafSize+1))
	t.build(0, len(pts))
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

func (t *Tree) build(lo, hi int) int32 {
	ni := int32(len(t.nodes))
	c, r := boundingBall(t.pts[lo:hi])
	t.nodes = append(t.nodes, node{center: c, radius: r, lo: lo, hi: hi, left: -1, right: -1})
	if hi-lo <= leafSize {
		return ni
	}
	// Split by projecting onto the diameter direction: pick the point A
	// farthest from the centroid, then B farthest from A, and partition by
	// which of A/B is closer (the classic ball-tree split).
	a := t.farthest(lo, hi, c)
	b := t.farthest(lo, hi, t.pts[a])
	pa, pb := t.pts[a], t.pts[b]
	mid := lo
	for i := lo; i < hi; i++ {
		if t.pts[i].Dist2(pa) <= t.pts[i].Dist2(pb) {
			t.swap(i, mid)
			mid++
		}
	}
	// Guard degenerate splits (all points identical): force a balanced cut.
	if mid == lo || mid == hi {
		mid = lo + (hi-lo)/2
	}
	left := t.build(lo, mid)
	right := t.build(mid, hi)
	t.nodes[ni].left = left
	t.nodes[ni].right = right
	return ni
}

func (t *Tree) swap(i, j int) {
	t.pts[i], t.pts[j] = t.pts[j], t.pts[i]
	t.idx[i], t.idx[j] = t.idx[j], t.idx[i]
}

func (t *Tree) farthest(lo, hi int, from geom.Point) int {
	best, bestD := lo, -1.0
	for i := lo; i < hi; i++ {
		if d := t.pts[i].Dist2(from); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// boundingBall returns a ball containing all points: centroid center with
// radius to the farthest point (within 2x of optimal, adequate for pruning).
func boundingBall(pts []geom.Point) (geom.Point, float64) {
	var c geom.Point
	for _, p := range pts {
		c = c.Add(p)
	}
	c = c.Scale(1 / float64(len(pts)))
	r2 := 0.0
	for _, p := range pts {
		if d := p.Dist2(c); d > r2 {
			r2 = d
		}
	}
	return c, math.Sqrt(r2)
}

// RangeCount returns the number of points within distance r of q.
func (t *Tree) RangeCount(q geom.Point, r float64) int {
	if len(t.nodes) == 0 || r < 0 {
		return 0
	}
	return t.rangeCount(0, q, r)
}

func (t *Tree) rangeCount(ni int32, q geom.Point, r float64) int {
	n := &t.nodes[ni]
	d := q.Dist(n.center)
	if d > n.radius+r {
		return 0 // ball entirely outside the disc
	}
	if d+n.radius <= r {
		return n.hi - n.lo // ball entirely inside the disc
	}
	if n.left < 0 {
		c := 0
		r2 := r * r
		for _, p := range t.pts[n.lo:n.hi] {
			if p.Dist2(q) <= r2 {
				c++
			}
		}
		return c
	}
	return t.rangeCount(n.left, q, r) + t.rangeCount(n.right, q, r)
}

// RangeQuery appends the original indices of all points within distance r
// of q to dst and returns the extended slice.
func (t *Tree) RangeQuery(q geom.Point, r float64, dst []int) []int {
	if len(t.nodes) == 0 || r < 0 {
		return dst
	}
	return t.rangeQuery(0, q, r, dst)
}

func (t *Tree) rangeQuery(ni int32, q geom.Point, r float64, dst []int) []int {
	n := &t.nodes[ni]
	d := q.Dist(n.center)
	if d > n.radius+r {
		return dst
	}
	if d+n.radius <= r {
		return append(dst, t.idx[n.lo:n.hi]...)
	}
	if n.left < 0 {
		r2 := r * r
		for i := n.lo; i < n.hi; i++ {
			if t.pts[i].Dist2(q) <= r2 {
				dst = append(dst, t.idx[i])
			}
		}
		return dst
	}
	dst = t.rangeQuery(n.left, q, r, dst)
	return t.rangeQuery(n.right, q, r, dst)
}

// NodeID identifies a tree node for the best-first traversal API used by
// bound-based kernel aggregation. The root is NodeID(0) on a non-empty
// tree; IsLeaf/Children navigate downwards.
type NodeID int32

// Root returns the root node id and false if the tree is empty.
func (t *Tree) Root() (NodeID, bool) {
	if len(t.nodes) == 0 {
		return 0, false
	}
	return 0, true
}

// IsLeaf reports whether id is a leaf.
func (t *Tree) IsLeaf(id NodeID) bool { return t.nodes[id].left < 0 }

// Children returns the two children of an internal node.
func (t *Tree) Children(id NodeID) (NodeID, NodeID) {
	n := &t.nodes[id]
	return NodeID(n.left), NodeID(n.right)
}

// NodeCount returns the number of points under id.
func (t *Tree) NodeCount(id NodeID) int {
	n := &t.nodes[id]
	return n.hi - n.lo
}

// NodeBracket returns [dMin, dMax] bounds on the distance from q to any
// point under id.
func (t *Tree) NodeBracket(id NodeID, q geom.Point) (dMin, dMax float64) {
	n := &t.nodes[id]
	d := q.Dist(n.center)
	return math.Max(0, d-n.radius), d + n.radius
}

// NodePoints calls fn for every point under id (used when a best-first
// traversal decides to resolve a leaf exactly).
func (t *Tree) NodePoints(id NodeID, fn func(p geom.Point)) {
	n := &t.nodes[id]
	for _, p := range t.pts[n.lo:n.hi] {
		fn(p)
	}
}

// Visit walks the tree with per-node distance brackets [dMin, dMax] from q,
// the traversal primitive for bound-based kernel aggregation: fn returns
// true to descend, false to accept the node's count·bracket contribution.
func (t *Tree) Visit(q geom.Point, fn func(dMin, dMax float64, count int) bool, leafFn func(p geom.Point)) {
	if len(t.nodes) == 0 {
		return
	}
	t.visit(0, q, fn, leafFn)
}

func (t *Tree) visit(ni int32, q geom.Point, fn func(float64, float64, int) bool, leafFn func(geom.Point)) {
	n := &t.nodes[ni]
	d := q.Dist(n.center)
	dMin := math.Max(0, d-n.radius)
	dMax := d + n.radius
	if !fn(dMin, dMax, n.hi-n.lo) {
		return
	}
	if n.left < 0 {
		for _, p := range t.pts[n.lo:n.hi] {
			leafFn(p)
		}
		return
	}
	t.visit(n.left, q, fn, leafFn)
	t.visit(n.right, q, fn, leafFn)
}
