package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Digest returns a hex SHA-256 over the dataset's exact binary content:
// the point count followed by the x, y and optional time/value/weight
// columns as little-endian IEEE-754 bit patterns, each optional column
// prefixed by a presence tag. Two datasets share a digest iff every stored
// float64 is bit-identical in the same order — the placement check the
// shard coordinator uses to verify a worker holds the same dataset it
// planned against.
func (d *Dataset) Digest() string {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeCol := func(tag uint64, col []float64) {
		if col == nil {
			writeU64(0)
			return
		}
		writeU64(tag)
		for _, v := range col {
			writeU64(math.Float64bits(v))
		}
	}
	writeU64(uint64(len(d.x)))
	for i := range d.x {
		writeU64(math.Float64bits(d.x[i]))
		writeU64(math.Float64bits(d.y[i]))
	}
	writeCol(1, d.times)
	writeCol(2, d.values)
	writeCol(3, d.weights)
	return hex.EncodeToString(h.Sum(nil))
}
