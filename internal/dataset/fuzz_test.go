package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadCSV checks the reader never panics and that any dataset it
// accepts survives a write/read cycle byte-identically: WriteCSV uses
// shortest round-trip float formatting, so re-reading and re-writing
// must reproduce the first encoding exactly.
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("x,y\n1,2\n3.5,-4e2\n"))
	f.Add([]byte("x,y,t,value\n1,2,0.5,9\n"))
	f.Add([]byte("x,y,value\n0.1,0.2,3\n"))
	f.Add([]byte("x,y\nnot,numbers\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf1 bytes.Buffer
		if err := WriteCSV(&buf1, d); err != nil {
			t.Fatalf("writing an accepted dataset: %v", err)
		}
		d2, err := ReadCSV(bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written output: %v\noutput: %q", err, buf1.Bytes())
		}
		var buf2 bytes.Buffer
		if err := WriteCSV(&buf2, d2); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("CSV round-trip not stable:\nfirst:  %q\nsecond: %q", buf1.Bytes(), buf2.Bytes())
		}
	})
}
