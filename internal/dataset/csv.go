package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"geostat/internal/geom"
)

// CSV layout: a header row followed by one row per point.
//
//	x,y           — purely spatial events
//	x,y,t         — spatiotemporal events
//	x,y,value     — measured field samples
//	x,y,t,value   — both
//
// The header names select the interpretation; column order must match one
// of the four layouts above. This mirrors the minimal schema of the public
// datasets the paper cites (longitude/latitude[/timestamp] exports).

// WriteCSV writes d to w in the layout matching its optional columns.
func WriteCSV(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := []string{"x", "y"}
	if d.HasTimes() {
		header = append(header, "t")
	}
	if d.HasValues() {
		header = append(header, "value")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, 4)
	for i := 0; i < d.N(); i++ {
		x, y := d.XY(i)
		row = row[:0]
		row = append(row, formatF(x), formatF(y))
		if d.HasTimes() {
			row = append(row, formatF(d.times[i]))
		}
		if d.HasValues() {
			row = append(row, formatF(d.values[i]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset in the layout written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	hasT, hasV, err := parseHeader(header)
	if err != nil {
		return nil, err
	}
	var (
		pts    []geom.Point
		times  []float64
		values []float64
	)
	if hasT {
		times = []float64{}
	}
	if hasV {
		values = []float64{}
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		vals := make([]float64, len(rec))
		for i, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d column %d: %w", line, i+1, err)
			}
			vals[i] = v
		}
		col := 2
		pts = append(pts, pointXY(vals[0], vals[1]))
		if hasT {
			times = append(times, vals[col])
			col++
		}
		if hasV {
			values = append(values, vals[col])
		}
	}
	return New(pts, times, values)
}

// ReadCSVFile reads a dataset from the named file.
func ReadCSVFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSVFile writes d to the named file, creating or truncating it.
func WriteCSVFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseHeader(h []string) (hasT, hasV bool, err error) {
	switch {
	case eq(h, "x", "y"):
		return false, false, nil
	case eq(h, "x", "y", "t"):
		return true, false, nil
	case eq(h, "x", "y", "value"):
		return false, true, nil
	case eq(h, "x", "y", "t", "value"):
		return true, true, nil
	}
	return false, false, fmt.Errorf("dataset: unrecognised CSV header %v (want x,y[,t][,value])", h)
}

func eq(h []string, want ...string) bool {
	if len(h) != len(want) {
		return false
	}
	for i := range h {
		if h[i] != want[i] {
			return false
		}
	}
	return true
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func pointXY(x, y float64) geom.Point { return geom.Point{X: x, Y: y} }
