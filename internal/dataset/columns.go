package dataset

import (
	"geostat/internal/geom"
)

// ChunkSize is the number of points per storage chunk. 4096 points is
// 32 KiB per coordinate column — two columns stream through L1/L2 while a
// raster row's accumulators stay register- or cache-resident, which is the
// cache-blocking grain the columnar evaluation loops in internal/kde,
// internal/kfunc and internal/idw are built around. Chunk boundaries are
// also the natural slicing grain for tile sharding and append-only
// versioning (ROADMAP items 1 and 4).
const ChunkSize = 4096

// Chunk is the metadata of one fixed-size storage chunk: the half-open
// column range [Lo, Hi) it covers plus precomputed aggregates that let
// distance-bounded tools reject the whole chunk without touching points.
type Chunk struct {
	// Lo and Hi bound the chunk's half-open slice of the columns.
	Lo, Hi int
	// BBox is the bounding box of the chunk's points. A query point
	// farther than the kernel support from BBox cannot receive any
	// contribution from this chunk.
	BBox geom.BBox
	// WeightSum is the sum of the chunk's weights (the point count when
	// the dataset is unweighted) — the mass a coarse evaluation assigns
	// to the whole chunk.
	WeightSum float64
	// Centroid is the weighted mean position of the chunk's points — the
	// attachment point for coreset/sketch layers built over chunks.
	Centroid geom.Point
}

// Columns is the structure-of-arrays view of a point set: coordinate
// columns (plus an optional weight column) with per-chunk aggregates.
// The inner loops of the analytic tools iterate these slices directly.
//
// The fields are read-only outside internal/dataset: writing them (or
// re-slicing and writing through them) silently breaks the chunk
// aggregates and the X/Y length invariant. The geolint colaccess analyzer
// rejects such writes at lint time.
type Columns struct {
	// X and Y are the coordinate columns; len(X) == len(Y).
	X, Y []float64
	// W is the optional per-point weight column (nil means all weights 1).
	W []float64
	// Chunks partitions [0, len(X)) into ChunkSize-sized ranges with
	// precomputed aggregates.
	Chunks []Chunk
}

// N returns the number of points in the columns.
func (c Columns) N() int { return len(c.X) }

// Bounds returns the bounding box of the columns, computed from the chunk
// aggregates (O(chunks), not O(n)).
func (c Columns) Bounds() geom.BBox {
	b := geom.EmptyBBox()
	for _, ch := range c.Chunks {
		b = b.Union(ch.BBox)
	}
	return b
}

// WeightAt returns the weight of point i (1 when unweighted).
func (c Columns) WeightAt(i int) float64 {
	if c.W == nil {
		return 1
	}
	return c.W[i]
}

// MakeColumns builds a chunked SoA view of pts with optional per-point
// weights. The coordinates are copied into fresh columns; w is aliased,
// not copied (it is already a column). This is the adapter the
// []geom.Point entry points of the analytic tools use to reach the
// columnar inner loops.
func MakeColumns(pts []geom.Point, w []float64) Columns {
	x := make([]float64, len(pts))
	y := make([]float64, len(pts))
	for i, p := range pts {
		x[i] = p.X
		y[i] = p.Y
	}
	return Columns{X: x, Y: y, W: w, Chunks: buildChunks(x, y, w)}
}

// buildChunks computes the per-chunk aggregates over the given columns.
func buildChunks(x, y, w []float64) []Chunk {
	n := len(x)
	if n == 0 {
		return nil
	}
	chunks := make([]Chunk, 0, (n+ChunkSize-1)/ChunkSize)
	for lo := 0; lo < n; lo += ChunkSize {
		hi := lo + ChunkSize
		if hi > n {
			hi = n
		}
		chunks = append(chunks, makeChunk(x, y, w, lo, hi))
	}
	return chunks
}

// makeChunk computes one chunk's aggregates over columns[lo:hi).
func makeChunk(x, y, w []float64, lo, hi int) Chunk {
	ch := Chunk{Lo: lo, Hi: hi, BBox: geom.EmptyBBox()}
	var sx, sy float64
	for i := lo; i < hi; i++ {
		ch.BBox = ch.BBox.ExtendPoint(geom.Point{X: x[i], Y: y[i]})
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		ch.WeightSum += wi
		sx += wi * x[i]
		sy += wi * y[i]
	}
	if ch.WeightSum != 0 {
		ch.Centroid = geom.Point{X: sx / ch.WeightSum, Y: sy / ch.WeightSum}
	} else {
		ch.Centroid = ch.BBox.Center()
	}
	return ch
}
