package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"geostat/internal/geom"
)

var box = geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

// raw builds a dataset directly from columns WITHOUT validation, so tests
// can construct deliberately malformed datasets.
func raw(pts []geom.Point, times, values []float64) *Dataset {
	d := FromPoints(pts)
	d.times, d.values = times, values
	return d
}

func TestValidate(t *testing.T) {
	d := raw([]geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}, nil, nil)
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	bad := []*Dataset{
		raw([]geom.Point{{X: 1, Y: 2}}, []float64{1, 2}, nil),
		raw([]geom.Point{{X: 1, Y: 2}}, nil, []float64{}),
		raw([]geom.Point{{X: math.NaN(), Y: 2}}, nil, nil),
		raw([]geom.Point{{X: 1, Y: math.Inf(1)}}, nil, nil),
		raw([]geom.Point{{X: 1, Y: 2}}, []float64{math.NaN()}, nil),
		raw([]geom.Point{{X: 1, Y: 2}}, nil, []float64{math.Inf(-1)}),
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad dataset %d accepted", i)
		}
	}
}

func TestCloneAndSubset(t *testing.T) {
	d := raw(
		[]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}},
		[]float64{10, 20, 30},
		[]float64{-1, -2, -3},
	)
	c := d.Clone()
	c.Times()[0] = 99
	c.Values()[0] = 99
	if d.Times()[0] == 99 || d.Values()[0] == 99 {
		t.Fatal("Clone aliases the original")
	}
	s := d.Subset([]int{2, 0})
	if s.N() != 2 || s.Points()[0] != (geom.Point{X: 2, Y: 2}) || s.Times()[1] != 10 || s.Values()[0] != -3 {
		t.Fatalf("Subset = %+v", s)
	}
}

func TestTimeRange(t *testing.T) {
	d := raw([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}, []float64{5, -2}, nil)
	lo, hi, ok := d.TimeRange()
	if !ok || lo != -2 || hi != 5 {
		t.Errorf("TimeRange = %v %v %v", lo, hi, ok)
	}
	if _, _, ok := FromPoints(nil).TimeRange(); ok {
		t.Error("TimeRange on timeless dataset should report !ok")
	}
}

func TestUniformCSR(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := UniformCSR(r, 5000, box)
	if d.N() != 5000 {
		t.Fatalf("N = %d", d.N())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Points() {
		if !box.Contains(p) {
			t.Fatalf("point %v outside box", p)
		}
	}
	// Quadrant counts should be roughly balanced under CSR.
	var q [4]int
	for _, p := range d.Points() {
		i := 0
		if p.X > 50 {
			i |= 1
		}
		if p.Y > 50 {
			i |= 2
		}
		q[i]++
	}
	for i, c := range q {
		if c < 1000 || c > 1500 {
			t.Errorf("quadrant %d count %d far from 1250", i, c)
		}
	}
}

func TestGaussianClustersConcentration(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	cl := []Cluster{
		{Center: geom.Point{X: 25, Y: 25}, Sigma: 3, Weight: 2},
		{Center: geom.Point{X: 75, Y: 75}, Sigma: 3, Weight: 1},
	}
	d := GaussianClusters(r, 3000, box, cl, 0.1)
	if d.N() != 3000 {
		t.Fatalf("N = %d", d.N())
	}
	near := func(c geom.Point) int {
		n := 0
		for _, p := range d.Points() {
			if p.Dist(c) < 10 {
				n++
			}
		}
		return n
	}
	n1, n2 := near(geom.Point{X: 25, Y: 25}), near(geom.Point{X: 75, Y: 75})
	if n1 < 1500 || n2 < 700 {
		t.Errorf("cluster concentrations too low: %d, %d", n1, n2)
	}
	if n1 < n2 {
		t.Errorf("weight-2 cluster (%d) should outnumber weight-1 cluster (%d)", n1, n2)
	}
}

func TestMaternCluster(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d := MaternCluster(r, box, 0.002, 30, 4)
	if d.N() == 0 {
		t.Fatal("Matérn process produced no points")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Points() {
		if !box.Contains(p) {
			t.Fatalf("point %v outside box", p)
		}
	}
	// Clustered data: mean nearest-neighbour distance is far below the CSR
	// expectation 0.5/sqrt(density).
	mnn := meanNearestNeighbour(d.Points())
	csr := 0.5 / math.Sqrt(float64(d.N())/box.Area())
	if mnn > csr*0.8 {
		t.Errorf("Matérn mean NN dist %v not clustered vs CSR %v", mnn, csr)
	}
}

func TestDispersed(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const minDist = 4.0
	d := Dispersed(r, 300, box, minDist)
	if d.N() != 300 {
		t.Fatalf("N = %d", d.N())
	}
	violations := 0
	for i := 0; i < d.N(); i++ {
		for j := i + 1; j < d.N(); j++ {
			if d.Points()[i].Dist(d.Points()[j]) < minDist {
				violations++
			}
		}
	}
	// The generator admits fallback placements; near-zero violations expected
	// at this density.
	if violations > 3 {
		t.Errorf("%d pairs violate the inhibition distance", violations)
	}
	mnn := meanNearestNeighbour(d.Points())
	csr := 0.5 / math.Sqrt(float64(d.N())/box.Area())
	if mnn < csr {
		t.Errorf("dispersed mean NN dist %v should exceed CSR %v", mnn, csr)
	}
}

func TestSpatioTemporalOutbreak(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	waves := []Wave{
		{Center: geom.Point{X: 20, Y: 20}, Sigma: 4, TimeMean: 10, TimeSigma: 2, Weight: 1},
		{Center: geom.Point{X: 80, Y: 80}, Sigma: 4, TimeMean: 40, TimeSigma: 2, Weight: 1},
	}
	d := SpatioTemporalOutbreak(r, 4000, box, 0, 50, waves, 0.1)
	if d.N() != 4000 || !d.HasTimes() {
		t.Fatalf("N=%d hasTimes=%v", d.N(), d.HasTimes())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Early events cluster near wave 1's center, late ones near wave 2's.
	early, late := centroidByTime(d, 0, 20), centroidByTime(d, 30, 50)
	if early.Dist(geom.Point{X: 20, Y: 20}) > 15 {
		t.Errorf("early centroid %v far from wave 1", early)
	}
	if late.Dist(geom.Point{X: 80, Y: 80}) > 15 {
		t.Errorf("late centroid %v far from wave 2", late)
	}
}

func TestWithField(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	d := UniformCSR(r, 500, box)
	WithField(r, d, func(p geom.Point) float64 { return p.X }, 0)
	for i, p := range d.Points() {
		if d.Values()[i] != p.X {
			t.Fatalf("value %d = %v, want %v", i, d.Values()[i], p.X)
		}
	}
}

func TestResize(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := UniformCSR(r, 100, box)
	small := Resize(r, d, 40)
	if small.N() != 40 {
		t.Errorf("shrink N = %d", small.N())
	}
	big := Resize(r, d, 250)
	if big.N() != 250 {
		t.Errorf("grow N = %d", big.N())
	}
	for _, p := range big.Points() {
		if !box.Contains(p) {
			t.Fatalf("grown point %v outside bounds", p)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cases := []*Dataset{
		raw([]geom.Point{{X: 1.5, Y: -2.25}, {X: 0, Y: 7}}, nil, nil),
		raw([]geom.Point{{X: 1, Y: 2}}, []float64{3.5}, nil),
		raw([]geom.Point{{X: 1, Y: 2}}, nil, []float64{-9}),
		raw([]geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}, []float64{0, 1}, []float64{5, 6}),
	}
	for i, d := range cases {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, d); err != nil {
			t.Fatalf("case %d write: %v", i, err)
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("case %d read: %v", i, err)
		}
		if got.N() != d.N() || got.HasTimes() != d.HasTimes() || got.HasValues() != d.HasValues() {
			t.Fatalf("case %d shape mismatch: %+v vs %+v", i, got, d)
		}
		for j := range d.Points() {
			if got.Points()[j] != d.Points()[j] {
				t.Errorf("case %d point %d: %v != %v", i, j, got.Points()[j], d.Points()[j])
			}
			if d.HasTimes() && got.Times()[j] != d.Times()[j] {
				t.Errorf("case %d time %d mismatch", i, j)
			}
			if d.HasValues() && got.Values()[j] != d.Values()[j] {
				t.Errorf("case %d value %d mismatch", i, j)
			}
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.csv")
	r := rand.New(rand.NewSource(8))
	d := UniformCSR(r, 50, box)
	if err := WriteCSVFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 50 {
		t.Fatalf("N = %d", got.N())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"a,b\n1,2\n",     // bad header
		"x,y\n1\n",       // short row (csv library catches record length)
		"x,y\n1,foo\n",   // non-numeric
		"x,y,z,w,v\n",    // too many columns
		"x,y\nNaN,2\n",   // non-finite coordinate
		"x,y,t\n1,2,#\n", // non-numeric time
	}
	for i, s := range cases {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: error expected for %q", i, s)
		}
	}
}

func meanNearestNeighbour(pts []geom.Point) float64 {
	sum := 0.0
	for i, p := range pts {
		best := math.Inf(1)
		for j, q := range pts {
			if i == j {
				continue
			}
			if d := p.Dist2(q); d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	return sum / float64(len(pts))
}

func centroidByTime(d *Dataset, t0, t1 float64) geom.Point {
	var c geom.Point
	n := 0
	ts := d.Times()
	for i, p := range d.Points() {
		if ts[i] >= t0 && ts[i] <= t1 {
			c = c.Add(p)
			n++
		}
	}
	if n == 0 {
		return c
	}
	return c.Scale(1 / float64(n))
}

func TestFilterBox(t *testing.T) {
	d := raw(
		[]geom.Point{{X: 1, Y: 1}, {X: 5, Y: 5}, {X: 9, Y: 9}},
		[]float64{1, 2, 3},
		[]float64{10, 20, 30},
	)
	f := d.FilterBox(geom.BBox{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5})
	if f.N() != 2 || f.Times()[1] != 2 || f.Values()[1] != 20 {
		t.Fatalf("FilterBox = %+v", f)
	}
	if empty := d.FilterBox(geom.EmptyBBox()); empty.N() != 0 {
		t.Error("empty box filter should drop everything")
	}
}

func TestFilterTime(t *testing.T) {
	d := raw(
		[]geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}},
		[]float64{10, 20, 30},
		nil,
	)
	f, err := d.FilterTime(15, 30)
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 2 || f.Times()[0] != 20 {
		t.Fatalf("FilterTime = %+v", f)
	}
	if _, err := FromPoints(d.Points()).FilterTime(0, 1); err == nil {
		t.Error("FilterTime on timeless dataset accepted")
	}
}

func TestSampleFromIntensity(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	spec := geom.NewPixelGrid(geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 2, 2)
	// Bottom-left pixel carries 90% of the mass.
	vals := []float64{9, 0.5, 0.25, 0.25}
	d, err := SampleFromIntensity(r, spec, vals, 20000)
	if err != nil {
		t.Fatal(err)
	}
	inBL := 0
	for _, p := range d.Points() {
		if !spec.Box.Contains(p) {
			t.Fatalf("point %v outside grid", p)
		}
		if p.X < 5 && p.Y < 5 {
			inBL++
		}
	}
	share := float64(inBL) / 20000
	if share < 0.88 || share > 0.92 {
		t.Errorf("bottom-left share = %v, want ≈ 0.9", share)
	}
	// Errors.
	if _, err := SampleFromIntensity(r, spec, vals[:2], 5); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := SampleFromIntensity(r, spec, []float64{0, 0, 0, 0}, 5); err == nil {
		t.Error("zero mass accepted")
	}
	if _, err := SampleFromIntensity(r, spec, []float64{1, -1, 0, 0}, 5); err == nil {
		t.Error("negative intensity accepted")
	}
}

func TestChunkAggregates(t *testing.T) {
	// Chunks must partition [0, n) in order, and every aggregate (bbox,
	// weight sum, centroid) must match a brute-force recomputation — both
	// at construction and after SetWeights rebuilds them.
	r := rand.New(rand.NewSource(31))
	n := 2*ChunkSize + 137 // three chunks, last one ragged
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
	}
	d := FromPoints(pts)

	check := func(w []float64) {
		t.Helper()
		chunks := d.Chunks()
		if len(chunks) != 3 {
			t.Fatalf("len(chunks) = %d, want 3", len(chunks))
		}
		next := 0
		for ci, ch := range chunks {
			if ch.Lo != next || ch.Hi <= ch.Lo {
				t.Fatalf("chunk %d covers [%d,%d), want start %d", ci, ch.Lo, ch.Hi, next)
			}
			next = ch.Hi
			wsum, sx, sy := 0.0, 0.0, 0.0
			bb := geom.EmptyBBox()
			for i := ch.Lo; i < ch.Hi; i++ {
				wi := 1.0
				if w != nil {
					wi = w[i]
				}
				wsum += wi
				sx += wi * pts[i].X
				sy += wi * pts[i].Y
				bb = bb.ExtendPoint(pts[i])
			}
			if ch.BBox != bb {
				t.Fatalf("chunk %d bbox = %+v, want %+v", ci, ch.BBox, bb)
			}
			if math.Abs(ch.WeightSum-wsum) > 1e-9 {
				t.Fatalf("chunk %d weight sum = %v, want %v", ci, ch.WeightSum, wsum)
			}
			if math.Abs(ch.Centroid.X-sx/wsum) > 1e-9 || math.Abs(ch.Centroid.Y-sy/wsum) > 1e-9 {
				t.Fatalf("chunk %d centroid = %+v", ci, ch.Centroid)
			}
		}
		if next != n {
			t.Fatalf("chunks end at %d, want %d", next, n)
		}
	}

	check(nil)
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.25 + r.Float64()
	}
	if err := d.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	check(w)
}

func TestFromPointsCopies(t *testing.T) {
	// The copy contract: FromPoints does not retain the input slice, so
	// mutating it afterwards cannot corrupt the dataset.
	pts := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	d := FromPoints(pts)
	pts[0] = geom.Point{X: -99, Y: -99}
	if d.Point(0) != (geom.Point{X: 1, Y: 2}) {
		t.Fatalf("dataset aliases the input slice: point 0 = %+v", d.Point(0))
	}
}

func TestSetWeightsRejectsBadColumns(t *testing.T) {
	d := FromPoints([]geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}})
	if err := d.SetWeights([]float64{1}); err == nil {
		t.Error("mismatched weight column length accepted")
	}
	if err := d.SetWeights([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
	if err := d.SetWeights([]float64{1, math.Inf(1)}); err == nil {
		t.Error("Inf weight accepted")
	}
}
