package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"geostat/internal/geom"
)

// The generators in this file are the synthetic stand-ins for the paper's
// real datasets. Each takes an explicit *rand.Rand so experiments are
// reproducible from a seed, and each produces a point process whose
// first/second-order structure matches the role the real dataset plays in
// the paper's narrative:
//
//   - UniformCSR:     complete spatial randomness — the null model of
//                     Definition 3's K-function envelopes.
//   - GaussianClusters: hotspot-bearing data (crime/COVID style, Figure 1).
//   - MaternCluster:  the classic clustered point process used in spatial
//                     statistics to exercise K-function tests (Figure 2).
//   - Dispersed:      inhibition process (points repel), the "dispersed"
//                     regime Figure 2 names.
//   - TwoWaveOutbreak: spatiotemporal two-wave epidemic (Figure 4's moving
//                     hotspots; Figure 6's clustered (s,t) region).

// UniformCSR returns n points uniformly distributed over box (a binomial
// point process — complete spatial randomness).
func UniformCSR(r *rand.Rand, n int, box geom.BBox) *Dataset {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = uniformPoint(r, box)
	}
	return FromPoints(pts)
}

// Cluster describes one Gaussian hotspot for GaussianClusters.
type Cluster struct {
	Center geom.Point
	Sigma  float64 // standard deviation of the isotropic Gaussian
	Weight float64 // relative share of points in this cluster
}

// GaussianClusters returns n points drawn from a mixture of isotropic
// Gaussian clusters plus a uniform background over box. noise in [0,1] is
// the fraction of points in the background. Points falling outside box are
// resampled so the dataset stays within the study region.
func GaussianClusters(r *rand.Rand, n int, box geom.BBox, clusters []Cluster, noise float64) *Dataset {
	total := 0.0
	for _, c := range clusters {
		total += c.Weight
	}
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		if len(clusters) == 0 || r.Float64() < noise {
			pts = append(pts, uniformPoint(r, box))
			continue
		}
		// Pick a cluster proportionally to weight.
		u := r.Float64() * total
		ci := 0
		for ; ci < len(clusters)-1; ci++ {
			u -= clusters[ci].Weight
			if u < 0 {
				break
			}
		}
		c := clusters[ci]
		p := geom.Point{
			X: c.Center.X + r.NormFloat64()*c.Sigma,
			Y: c.Center.Y + r.NormFloat64()*c.Sigma,
		}
		if box.Contains(p) {
			pts = append(pts, p)
		}
	}
	return FromPoints(pts)
}

// MaternCluster returns a Matérn cluster process: parent points from a
// Poisson process with intensity kappa (per unit area), each parent
// producing Poisson(mu) children uniform in a disc of radius radius around
// it. Children outside box are discarded, so the realised count varies —
// use Resize to force an exact n when an experiment needs one.
func MaternCluster(r *rand.Rand, box geom.BBox, kappa, mu, radius float64) *Dataset {
	nParents := poisson(r, kappa*box.Area())
	var pts []geom.Point
	for i := 0; i < nParents; i++ {
		parent := uniformPoint(r, box)
		nChildren := poisson(r, mu)
		for j := 0; j < nChildren; j++ {
			// Uniform in disc: r = R·sqrt(u), θ uniform.
			rho := radius * math.Sqrt(r.Float64())
			theta := r.Float64() * 2 * math.Pi
			p := geom.Point{X: parent.X + rho*math.Cos(theta), Y: parent.Y + rho*math.Sin(theta)}
			if box.Contains(p) {
				pts = append(pts, p)
			}
		}
	}
	return FromPoints(pts)
}

// Dispersed returns n points from a simple sequential inhibition process:
// each new point is rejected if it falls within minDist of an existing
// point (up to maxTries attempts, after which the constraint is dropped so
// the generator always terminates with exactly n points).
func Dispersed(r *rand.Rand, n int, box geom.BBox, minDist float64) *Dataset {
	const maxTries = 200
	d2 := minDist * minDist
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		placed := false
		for try := 0; try < maxTries; try++ {
			cand := uniformPoint(r, box)
			ok := true
			for _, q := range pts {
				if cand.Dist2(q) < d2 {
					ok = false
					break
				}
			}
			if ok {
				pts = append(pts, cand)
				placed = true
				break
			}
		}
		if !placed {
			pts = append(pts, uniformPoint(r, box))
		}
	}
	return FromPoints(pts)
}

// Wave describes one outbreak wave for TwoWaveOutbreak: a spatial hotspot
// active around a central time.
type Wave struct {
	Center    geom.Point
	Sigma     float64 // spatial spread
	TimeMean  float64 // wave peak time
	TimeSigma float64 // temporal spread
	Weight    float64 // relative share of cases
}

// SpatioTemporalOutbreak returns n spatiotemporal events drawn from the
// given waves plus a uniform space-time background (noise fraction) over
// box × [t0, t1]. With two waves at different centers and times this
// reproduces the Figure 4 phenomenon: the spatial hotspot moves with time.
func SpatioTemporalOutbreak(r *rand.Rand, n int, box geom.BBox, t0, t1 float64, waves []Wave, noise float64) *Dataset {
	total := 0.0
	for _, w := range waves {
		total += w.Weight
	}
	pts := make([]geom.Point, 0, n)
	times := make([]float64, 0, n)
	for len(pts) < n {
		if len(waves) == 0 || r.Float64() < noise {
			pts = append(pts, uniformPoint(r, box))
			times = append(times, t0+r.Float64()*(t1-t0))
			continue
		}
		u := r.Float64() * total
		wi := 0
		for ; wi < len(waves)-1; wi++ {
			u -= waves[wi].Weight
			if u < 0 {
				break
			}
		}
		w := waves[wi]
		p := geom.Point{
			X: w.Center.X + r.NormFloat64()*w.Sigma,
			Y: w.Center.Y + r.NormFloat64()*w.Sigma,
		}
		t := w.TimeMean + r.NormFloat64()*w.TimeSigma
		if box.Contains(p) && t >= t0 && t <= t1 {
			pts = append(pts, p)
			times = append(times, t)
		}
	}
	d := FromPoints(pts)
	d.times = times
	return d
}

// WithField attaches a measured value to every point of d by sampling the
// given scalar field plus Gaussian observation noise — the input shape the
// interpolation (IDW/Kriging) and autocorrelation (Moran/Getis-Ord) tools
// need. It returns d for chaining.
func WithField(r *rand.Rand, d *Dataset, field func(geom.Point) float64, noiseSigma float64) *Dataset {
	values := make([]float64, d.N())
	for i := range values {
		values[i] = field(d.Point(i)) + r.NormFloat64()*noiseSigma
	}
	d.values = values
	return d
}

// Resize returns a dataset with exactly n points: truncating if d has more,
// or appending uniform points over d's bounds if it has fewer.
func Resize(r *rand.Rand, d *Dataset, n int) *Dataset {
	if d.N() >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return d.Subset(idx)
	}
	c := d.Clone()
	box := d.Bounds()
	if box.IsEmpty() {
		box = geom.BBox{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	for c.N() < n {
		p := uniformPoint(r, box)
		c.x = append(c.x, p.X)
		c.y = append(c.y, p.Y)
		if c.times != nil {
			lo, hi, _ := d.TimeRange()
			c.times = append(c.times, lo+r.Float64()*(hi-lo))
		}
		if c.values != nil {
			c.values = append(c.values, 0)
		}
		if c.weights != nil {
			c.weights = append(c.weights, 1)
		}
	}
	c.chunks = buildChunks(c.x, c.y, c.weights)
	return c
}

// SampleFromIntensity draws n points from the (unnormalised, non-negative)
// intensity surface given as per-pixel values over spec: a pixel is chosen
// proportionally to its value, then the point is uniform within the pixel.
// This is the model-based bootstrap behind inhomogeneous null models: fit
// a KDV to observed events, then simulate "same first-order intensity, no
// interaction" datasets from it.
func SampleFromIntensity(r *rand.Rand, spec geom.PixelGrid, values []float64, n int) (*Dataset, error) {
	if len(values) != spec.NumPixels() {
		return nil, fmt.Errorf("dataset: %d values for a %dx%d grid", len(values), spec.NX, spec.NY)
	}
	cum := make([]float64, len(values)+1)
	for i, v := range values {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("dataset: intensity value %d is %g (need finite, >= 0)", i, v)
		}
		cum[i+1] = cum[i] + v
	}
	total := cum[len(values)]
	if total <= 0 {
		return nil, fmt.Errorf("dataset: intensity surface sums to %g", total)
	}
	cw, ch := spec.CellW(), spec.CellH()
	pts := make([]geom.Point, n)
	for i := range pts {
		target := r.Float64() * total
		// Binary search the cumulative mass for the pixel.
		lo, hi := 0, len(values)
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] <= target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= len(values) {
			lo = len(values) - 1
		}
		ix, iy := lo%spec.NX, lo/spec.NX
		pts[i] = geom.Point{
			X: spec.Box.MinX + (float64(ix)+r.Float64())*cw,
			Y: spec.Box.MinY + (float64(iy)+r.Float64())*ch,
		}
	}
	return FromPoints(pts), nil
}

func uniformPoint(r *rand.Rand, box geom.BBox) geom.Point {
	return geom.Point{
		X: box.MinX + r.Float64()*box.Width(),
		Y: box.MinY + r.Float64()*box.Height(),
	}
}

// poisson draws from a Poisson distribution with the given mean using
// Knuth's product method for small means and a normal approximation for
// large ones (mean > 30), which is ample for generator use.
func poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
