// Package dataset defines the location datasets the paper's tools consume
// (Definition 1: P = {p1..pn}; §2.3: spatiotemporal datasets with event
// times) together with deterministic synthetic generators standing in for
// the paper's access-gated real datasets (Hong Kong COVID-19, Chicago
// crime, NYC taxi — see DESIGN.md's substitution table), and CSV I/O for
// the CLIs.
package dataset

import (
	"fmt"
	"math"

	"geostat/internal/geom"
)

// Dataset is a location dataset: points with optional per-point event times
// and values. Times power the spatiotemporal tools (STKDV, spatiotemporal
// K-function); Values power the interpolation (IDW, Kriging) and
// autocorrelation (Moran's I, Getis-Ord) tools, which are defined on
// measured attributes rather than bare events.
//
// Invariants (checked by Validate): Times and Values are either nil or have
// exactly len(Points) entries, and no coordinate is NaN/Inf.
type Dataset struct {
	Points []geom.Point
	Times  []float64 // event timestamps, arbitrary units; nil if purely spatial
	Values []float64 // measured attribute at each point; nil if pure events
}

// N returns the number of points.
func (d *Dataset) N() int { return len(d.Points) }

// HasTimes reports whether the dataset carries event times.
func (d *Dataset) HasTimes() bool { return d.Times != nil }

// HasValues reports whether the dataset carries measured values.
func (d *Dataset) HasValues() bool { return d.Values != nil }

// Bounds returns the bounding box of the points.
func (d *Dataset) Bounds() geom.BBox { return geom.NewBBox(d.Points) }

// TimeRange returns the min and max event time. It returns (0, 0, false)
// if the dataset has no times or no points.
func (d *Dataset) TimeRange() (lo, hi float64, ok bool) {
	if !d.HasTimes() || len(d.Times) == 0 {
		return 0, 0, false
	}
	lo, hi = d.Times[0], d.Times[0]
	for _, t := range d.Times[1:] {
		lo = math.Min(lo, t)
		hi = math.Max(hi, t)
	}
	return lo, hi, true
}

// Validate checks the dataset invariants.
func (d *Dataset) Validate() error {
	if d.Times != nil && len(d.Times) != len(d.Points) {
		return fmt.Errorf("dataset: %d points but %d times", len(d.Points), len(d.Times))
	}
	if d.Values != nil && len(d.Values) != len(d.Points) {
		return fmt.Errorf("dataset: %d points but %d values", len(d.Points), len(d.Values))
	}
	for i, p := range d.Points {
		if !finite(p.X) || !finite(p.Y) {
			return fmt.Errorf("dataset: point %d has non-finite coordinate %v", i, p)
		}
	}
	for i, t := range d.Times {
		if !finite(t) {
			return fmt.Errorf("dataset: time %d is non-finite (%v)", i, t)
		}
	}
	for i, v := range d.Values {
		if !finite(v) {
			return fmt.Errorf("dataset: value %d is non-finite (%v)", i, v)
		}
	}
	return nil
}

// Clone returns a deep copy of d.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{Points: append([]geom.Point(nil), d.Points...)}
	if d.Times != nil {
		c.Times = append([]float64(nil), d.Times...)
	}
	if d.Values != nil {
		c.Values = append([]float64(nil), d.Values...)
	}
	return c
}

// Subset returns a new dataset holding the points at the given indices,
// carrying times/values along when present.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{Points: make([]geom.Point, len(idx))}
	if d.Times != nil {
		s.Times = make([]float64, len(idx))
	}
	if d.Values != nil {
		s.Values = make([]float64, len(idx))
	}
	for j, i := range idx {
		s.Points[j] = d.Points[i]
		if d.Times != nil {
			s.Times[j] = d.Times[i]
		}
		if d.Values != nil {
			s.Values[j] = d.Values[i]
		}
	}
	return s
}

// FromPoints wraps points in a Dataset without copying.
func FromPoints(pts []geom.Point) *Dataset { return &Dataset{Points: pts} }

// FilterBox returns a new dataset with only the points inside box
// (boundary inclusive), carrying times/values along.
func (d *Dataset) FilterBox(box geom.BBox) *Dataset {
	var idx []int
	for i, p := range d.Points {
		if box.Contains(p) {
			idx = append(idx, i)
		}
	}
	return d.Subset(idx)
}

// FilterTime returns a new dataset with only the events whose time lies in
// [t0, t1]. It errors if the dataset carries no times.
func (d *Dataset) FilterTime(t0, t1 float64) (*Dataset, error) {
	if !d.HasTimes() {
		return nil, fmt.Errorf("dataset: FilterTime on a dataset without times")
	}
	var idx []int
	for i, t := range d.Times {
		if t >= t0 && t <= t1 {
			idx = append(idx, i)
		}
	}
	return d.Subset(idx), nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
