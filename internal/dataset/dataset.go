// Package dataset defines the location datasets the paper's tools consume
// (Definition 1: P = {p1..pn}; §2.3: spatiotemporal datasets with event
// times) together with deterministic synthetic generators standing in for
// the paper's access-gated real datasets (Hong Kong COVID-19, Chicago
// crime, NYC taxi — see DESIGN.md's substitution table), and CSV I/O for
// the CLIs.
//
// Storage is a chunked structure-of-arrays: separate x/y (plus optional
// weight/time/value) columns, partitioned into ChunkSize ranges whose
// bounding box, weight sum and centroid are precomputed (see Columns).
// Distance-bounded tools reject whole chunks against the kernel support
// before touching points, and the columnar layout is what the
// cache-blocked inner loops in internal/kde, internal/kfunc and
// internal/idw iterate. Point order is insertion order — chunking never
// reorders points, so results that sum per-point contributions are
// bit-identical to a flat array-of-structs evaluation.
package dataset

import (
	"fmt"
	"math"

	"geostat/internal/geom"
)

// Dataset is a location dataset: points with optional per-point event
// times, measured values and weights. Times power the spatiotemporal tools
// (STKDV, spatiotemporal K-function); Values power the interpolation (IDW,
// Kriging) and autocorrelation (Moran's I, Getis-Ord) tools, which are
// defined on measured attributes rather than bare events; Weights scale
// each event's mass in density tools (severity, case counts).
//
// Invariants (checked by Validate): the optional columns are either nil or
// have exactly N() entries, and no stored number is NaN/Inf.
//
// The zero value is an empty dataset. Construct with New, FromPoints or
// the generators; read coordinates through XY/Point/Points and the column
// accessors. The internal columns are not addressable from outside this
// package, so the chunk aggregates can never drift from the data.
type Dataset struct {
	x, y    []float64
	chunks  []Chunk
	times   []float64 // event timestamps, arbitrary units; nil if purely spatial
	values  []float64 // measured attribute at each point; nil if pure events
	weights []float64 // per-event mass; nil means all 1
}

// New assembles a dataset from points and optional times/values columns
// (either may be nil). The coordinates are copied into columnar storage;
// times and values are retained without copying and must not be mutated by
// the caller afterwards.
func New(pts []geom.Point, times, values []float64) (*Dataset, error) {
	d := FromPoints(pts)
	d.times = times
	d.values = values
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// FromPoints builds a dataset over pts. The coordinates are copied into
// the chunked columnar storage: unlike the pre-columnar version of this
// API, the input slice is NOT retained, so callers may reuse or mutate pts
// freely afterwards (the old aliasing footgun is gone by construction).
func FromPoints(pts []geom.Point) *Dataset {
	c := MakeColumns(pts, nil)
	return &Dataset{x: c.X, y: c.Y, chunks: c.Chunks}
}

// fromColumns wraps already-built coordinate columns, taking ownership.
func fromColumns(x, y []float64) *Dataset {
	return &Dataset{x: x, y: y, chunks: buildChunks(x, y, nil)}
}

// N returns the number of points.
func (d *Dataset) N() int { return len(d.x) }

// XY returns the coordinates of point i.
func (d *Dataset) XY(i int) (x, y float64) { return d.x[i], d.y[i] }

// Point returns point i.
func (d *Dataset) Point(i int) geom.Point { return geom.Point{X: d.x[i], Y: d.y[i]} }

// Points materialises the points as a fresh array-of-structs slice — an
// O(n) copy for APIs shaped around []geom.Point. Hot paths should use
// Columns instead and iterate the coordinate slices directly.
func (d *Dataset) Points() []geom.Point {
	pts := make([]geom.Point, len(d.x))
	for i := range pts {
		pts[i] = geom.Point{X: d.x[i], Y: d.y[i]}
	}
	return pts
}

// Columns returns the chunked SoA view of the dataset (coordinates, the
// optional weight column, and per-chunk aggregates). The returned slices
// alias the dataset's storage and are read-only: writing through them
// breaks the chunk aggregates (the geolint colaccess analyzer enforces
// this outside internal/dataset).
func (d *Dataset) Columns() Columns {
	return Columns{X: d.x, Y: d.y, W: d.weights, Chunks: d.chunks}
}

// Chunks returns the per-chunk metadata (see Chunk).
func (d *Dataset) Chunks() []Chunk { return d.chunks }

// Times returns the event-time column (nil if purely spatial). The slice
// aliases the dataset's storage; treat it as read-only.
func (d *Dataset) Times() []float64 { return d.times }

// Values returns the measured-value column (nil if pure events). The
// slice aliases the dataset's storage; treat it as read-only.
func (d *Dataset) Values() []float64 { return d.values }

// Weights returns the per-event weight column (nil means all 1). The
// slice aliases the dataset's storage; treat it as read-only.
func (d *Dataset) Weights() []float64 { return d.weights }

// HasTimes reports whether the dataset carries event times.
func (d *Dataset) HasTimes() bool { return d.times != nil }

// HasValues reports whether the dataset carries measured values.
func (d *Dataset) HasValues() bool { return d.values != nil }

// HasWeights reports whether the dataset carries per-event weights.
func (d *Dataset) HasWeights() bool { return d.weights != nil }

// SetTimes attaches (or with nil, removes) the event-time column. The
// slice is retained without copying; the caller must not mutate it
// afterwards.
func (d *Dataset) SetTimes(times []float64) error {
	if err := checkColumn("time", times, d.N()); err != nil {
		return err
	}
	d.times = times
	return nil
}

// SetValues attaches (or with nil, removes) the measured-value column.
// The slice is retained without copying; the caller must not mutate it
// afterwards.
func (d *Dataset) SetValues(values []float64) error {
	if err := checkColumn("value", values, d.N()); err != nil {
		return err
	}
	d.values = values
	return nil
}

// SetWeights attaches (or with nil, removes) the per-event weight column
// and recomputes the per-chunk weight aggregates. The slice is retained
// without copying; the caller must not mutate it afterwards.
func (d *Dataset) SetWeights(weights []float64) error {
	if err := checkColumn("weight", weights, d.N()); err != nil {
		return err
	}
	d.weights = weights
	d.chunks = buildChunks(d.x, d.y, d.weights)
	return nil
}

// checkColumn validates an optional column against the point count: nil is
// allowed, otherwise the length must match and every entry be finite.
func checkColumn(what string, col []float64, n int) error {
	if col == nil {
		return nil
	}
	if len(col) != n {
		return fmt.Errorf("dataset: %d points but %d %ss", n, len(col), what)
	}
	for i, v := range col {
		if !finite(v) {
			return fmt.Errorf("dataset: %s %d is non-finite (%v)", what, i, v)
		}
	}
	return nil
}

// Bounds returns the bounding box of the points, from the precomputed
// chunk aggregates (O(chunks)).
func (d *Dataset) Bounds() geom.BBox {
	b := geom.EmptyBBox()
	for _, ch := range d.chunks {
		b = b.Union(ch.BBox)
	}
	return b
}

// TimeRange returns the min and max event time. It returns (0, 0, false)
// if the dataset has no times or no points.
func (d *Dataset) TimeRange() (lo, hi float64, ok bool) {
	if !d.HasTimes() || len(d.times) == 0 {
		return 0, 0, false
	}
	lo, hi = d.times[0], d.times[0]
	for _, t := range d.times[1:] {
		lo = math.Min(lo, t)
		hi = math.Max(hi, t)
	}
	return lo, hi, true
}

// Validate checks the dataset invariants: matched column lengths and no
// NaN/Inf anywhere (coordinates, times, values, weights).
func (d *Dataset) Validate() error {
	if len(d.x) != len(d.y) {
		return fmt.Errorf("dataset: %d x coordinates but %d y coordinates", len(d.x), len(d.y))
	}
	for i := range d.x {
		if !finite(d.x[i]) || !finite(d.y[i]) {
			return fmt.Errorf("dataset: point %d has non-finite coordinate (%g, %g)", i, d.x[i], d.y[i])
		}
	}
	if err := checkColumn("time", d.times, d.N()); err != nil {
		return err
	}
	if err := checkColumn("value", d.values, d.N()); err != nil {
		return err
	}
	if err := checkColumn("weight", d.weights, d.N()); err != nil {
		return err
	}
	return nil
}

// Clone returns a deep copy of d.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		x:      append([]float64(nil), d.x...),
		y:      append([]float64(nil), d.y...),
		chunks: append([]Chunk(nil), d.chunks...),
	}
	if d.times != nil {
		c.times = append([]float64(nil), d.times...)
	}
	if d.values != nil {
		c.values = append([]float64(nil), d.values...)
	}
	if d.weights != nil {
		c.weights = append([]float64(nil), d.weights...)
	}
	return c
}

// Subset returns a new dataset holding the points at the given indices,
// carrying times/values/weights along when present.
func (d *Dataset) Subset(idx []int) *Dataset {
	x := make([]float64, len(idx))
	y := make([]float64, len(idx))
	for j, i := range idx {
		x[j], y[j] = d.x[i], d.y[i]
	}
	s := fromColumns(x, y)
	s.times = subsetColumn(d.times, idx)
	s.values = subsetColumn(d.values, idx)
	if d.weights != nil {
		s.weights = subsetColumn(d.weights, idx)
		s.chunks = buildChunks(s.x, s.y, s.weights)
	}
	return s
}

func subsetColumn(col []float64, idx []int) []float64 {
	if col == nil {
		return nil
	}
	out := make([]float64, len(idx))
	for j, i := range idx {
		out[j] = col[i]
	}
	return out
}

// FilterBox returns a new dataset with only the points inside box
// (boundary inclusive), carrying the optional columns along. Chunks whose
// bounding box misses box entirely are skipped without per-point tests.
func (d *Dataset) FilterBox(box geom.BBox) *Dataset {
	var idx []int
	for _, ch := range d.chunks {
		if !box.Intersects(ch.BBox) {
			continue
		}
		if box.ContainsBox(ch.BBox) {
			for i := ch.Lo; i < ch.Hi; i++ {
				idx = append(idx, i)
			}
			continue
		}
		for i := ch.Lo; i < ch.Hi; i++ {
			if box.Contains(geom.Point{X: d.x[i], Y: d.y[i]}) {
				idx = append(idx, i)
			}
		}
	}
	return d.Subset(idx)
}

// FilterTime returns a new dataset with only the events whose time lies in
// [t0, t1]. It errors if the dataset carries no times.
func (d *Dataset) FilterTime(t0, t1 float64) (*Dataset, error) {
	if !d.HasTimes() {
		return nil, fmt.Errorf("dataset: FilterTime on a dataset without times")
	}
	var idx []int
	for i, t := range d.times {
		if t >= t0 && t <= t1 {
			idx = append(idx, i)
		}
	}
	return d.Subset(idx), nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
