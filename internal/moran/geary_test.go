package moran

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/geom"
)

func TestGearyGradient(t *testing.T) {
	pts := gridPoints(10)
	w := bandW(t, pts)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.X + p.Y
	}
	res, err := Geary(vals, w, 199, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.C >= 0.5 {
		t.Errorf("gradient C = %v, want well below 1", res.C)
	}
	if res.Z >= -3 {
		t.Errorf("gradient z = %v, want very negative", res.Z)
	}
	if res.P > 0.02 {
		t.Errorf("gradient p = %v", res.P)
	}
	if res.Expected != 1 {
		t.Errorf("Expected = %v", res.Expected)
	}
}

func TestGearyCheckerboard(t *testing.T) {
	pts := gridPoints(10)
	w := bandW(t, pts)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		if (int(p.X)+int(p.Y))%2 == 0 {
			vals[i] = 1
		} else {
			vals[i] = -1
		}
	}
	res, err := Geary(vals, w, 199, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.C <= 1.5 {
		t.Errorf("checkerboard C = %v, want well above 1", res.C)
	}
}

func TestGearyRandom(t *testing.T) {
	pts := gridPoints(10)
	w := bandW(t, pts)
	r := rand.New(rand.NewSource(3))
	insig := 0
	for trial := 0; trial < 10; trial++ {
		vals := make([]float64, len(pts))
		for i := range vals {
			vals[i] = r.NormFloat64()
		}
		res, err := Geary(vals, w, 199, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.C-1) > 0.35 {
			t.Errorf("random C = %v, want ≈ 1", res.C)
		}
		if res.P > 0.05 {
			insig++
		}
	}
	if insig < 8 {
		t.Errorf("random fields significant too often: %d/10 insignificant", insig)
	}
}

func TestGearyValidation(t *testing.T) {
	pts := gridPoints(3)
	w := bandW(t, pts)
	if _, err := Geary([]float64{1}, w, 0, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	constVals := make([]float64, len(pts))
	if _, err := Geary(constVals, w, 0, nil); err == nil {
		t.Error("constant values accepted")
	}
	vals := make([]float64, len(pts))
	for i := range vals {
		vals[i] = float64(i)
	}
	if _, err := Geary(vals, w, 10, nil); err == nil {
		t.Error("perms without rng accepted")
	}
	res, err := Geary(vals, w, 0, nil)
	if err != nil || res.Perms != 0 {
		t.Errorf("no-perm run: %+v, %v", res, err)
	}
}

// Geary and Moran must agree in direction: C < 1 iff I > E[I] on strongly
// structured data.
func TestGearyMoranConsistency(t *testing.T) {
	pts := gridPoints(9)
	w := bandW(t, pts)
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		vals := make([]float64, len(pts))
		for i, p := range pts {
			vals[i] = p.X*2 + r.NormFloat64()*0.5
		}
		g, err := Geary(vals, w, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Global(vals, w, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if (g.C < 1) != (m.I > m.Expected) {
			t.Errorf("Geary C=%v and Moran I=%v disagree in direction", g.C, m.I)
		}
	}
}

func TestQuadrants(t *testing.T) {
	pts := gridPoints(8)
	w := bandW(t, pts)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		if p.X >= 4 {
			vals[i] = 10 // east half high, west half low
		}
	}
	q, err := Quadrants(vals, w)
	if err != nil {
		t.Fatal(err)
	}
	// Deep east: HH. Deep west: LL.
	if q[7*8+7] != HH {
		t.Errorf("east corner = %v, want HH", q[7*8+7])
	}
	if q[0] != LL {
		t.Errorf("west corner = %v, want LL", q[0])
	}
	// Boundary high site with low neighbours on balance? Site at x=4 has
	// neighbours x=3 (low), x=5 (high): lag mixes; just verify labels valid
	// and the String method.
	for _, v := range q {
		switch v {
		case HH, LL, HL, LH:
		default:
			t.Fatalf("invalid quadrant %v", v)
		}
	}
	if HH.String() != "HH" || LL.String() != "LL" || HL.String() != "HL" || LH.String() != "LH" {
		t.Error("quadrant names wrong")
	}
	if _, err := Quadrants(vals[:3], w); err == nil {
		t.Error("length mismatch accepted")
	}
}

// A spatial outlier: one high value in a low neighbourhood must be HL, and
// its neighbours LH.
func TestQuadrantsOutlier(t *testing.T) {
	pts := gridPoints(7)
	w := bandW(t, pts)
	vals := make([]float64, len(pts))
	center := 3*7 + 3
	vals[center] = 100
	q, err := Quadrants(vals, w)
	if err != nil {
		t.Fatal(err)
	}
	if q[center] != HL {
		t.Errorf("outlier = %v, want HL", q[center])
	}
	if q[center+1] != LH {
		t.Errorf("outlier neighbour = %v, want LH", q[center+1])
	}
}

func TestCorrelogramDecays(t *testing.T) {
	// A smooth field's autocorrelation decays with distance band radius.
	r := rand.New(rand.NewSource(10))
	n := 15
	var pts []geom.Point
	var vals []float64
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			pts = append(pts, geom.Point{X: float64(x), Y: float64(y)})
			vals = append(vals, math.Sin(float64(x)/4)+math.Cos(float64(y)/4)+r.NormFloat64()*0.1)
		}
	}
	cg, err := Correlogram(pts, vals, []float64{1.5, 4, 8, 15}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cg) != 4 {
		t.Fatalf("points = %d", len(cg))
	}
	if cg[0].Result.I < 0.5 {
		t.Errorf("short-range I = %v, want strong", cg[0].Result.I)
	}
	if cg[len(cg)-1].Result.I >= cg[0].Result.I {
		t.Errorf("I should decay: %v -> %v", cg[0].Result.I, cg[len(cg)-1].Result.I)
	}
}

func TestCorrelogramValidation(t *testing.T) {
	pts := gridPoints(4)
	vals := make([]float64, len(pts))
	for i := range vals {
		vals[i] = float64(i)
	}
	if _, err := Correlogram(pts, vals[:3], []float64{1}, 0, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Correlogram(pts, vals, []float64{2, 2}, 0, nil); err == nil {
		t.Error("non-increasing radii accepted")
	}
	if _, err := Correlogram(pts, vals, []float64{0.1}, 0, nil); err == nil {
		t.Error("all-empty bands accepted")
	}
	// An empty first band is skipped, not fatal.
	cg, err := Correlogram(pts, vals, []float64{0.1, 1.5}, 0, nil)
	if err != nil || len(cg) != 1 || cg[0].Radius != 1.5 {
		t.Errorf("band skipping: %v, %v", cg, err)
	}
}
