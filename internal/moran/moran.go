// Package moran implements Moran's I (Table 1 of the paper, [37, 60, 93]):
// global spatial autocorrelation of a measured attribute, with a
// permutation significance test and the local variant (LISA).
package moran

import (
	"fmt"
	"math"
	"math/rand"

	"geostat/internal/weights"
)

// Result is a global Moran's I with its permutation test.
type Result struct {
	I        float64 // observed statistic
	Expected float64 // E[I] under randomisation = −1/(n−1)
	PermMean float64 // mean of the permutation distribution
	PermStd  float64 // standard deviation of the permutation distribution
	Z        float64 // (I − PermMean)/PermStd
	P        float64 // two-sided pseudo p-value: (r+1)/(perms+1), r = #{|I_perm−mean| >= |I−mean|}
	Perms    int
}

// Global computes Moran's I over the weight matrix w:
//
//	I = (n/S0) · Σ_ij w_ij·(z_i − z̄)(z_j − z̄) / Σ_i (z_i − z̄)²
//
// perms > 0 adds a permutation test driven by rng (values are shuffled,
// geometry fixed).
func Global(values []float64, w *weights.Matrix, perms int, rng *rand.Rand) (*Result, error) {
	n := len(values)
	if n != w.N {
		return nil, fmt.Errorf("moran: %d values but weight matrix over %d sites", n, w.N)
	}
	if n < 3 {
		return nil, fmt.Errorf("moran: need at least 3 sites, got %d", n)
	}
	if perms > 0 && rng == nil {
		return nil, fmt.Errorf("moran: permutation test requires a rng")
	}
	s0 := w.S0()
	if s0 == 0 {
		return nil, fmt.Errorf("moran: weight matrix is empty")
	}
	obs, ok := statistic(values, w, s0)
	if !ok {
		return nil, fmt.Errorf("moran: constant values (zero variance)")
	}
	res := &Result{
		I:        obs,
		Expected: -1 / float64(n-1),
		Perms:    perms,
	}
	if perms <= 0 {
		return res, nil
	}
	perm := append([]float64(nil), values...)
	samples := make([]float64, perms)
	for p := range samples {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		samples[p], _ = statistic(perm, w, s0)
	}
	mean, std := meanStd(samples)
	res.PermMean, res.PermStd = mean, std
	if std > 0 {
		res.Z = (obs - mean) / std
	}
	extreme := 0
	for _, s := range samples {
		if math.Abs(s-mean) >= math.Abs(obs-mean) {
			extreme++
		}
	}
	res.P = float64(extreme+1) / float64(perms+1)
	return res, nil
}

// statistic computes I; ok=false when the values have zero variance.
func statistic(values []float64, w *weights.Matrix, s0 float64) (float64, bool) {
	n := len(values)
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= float64(n)
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		zi := values[i] - mean
		den += zi * zi
		w.ForEachNeighbor(i, func(j int, wij float64) {
			num += wij * zi * (values[j] - mean)
		})
	}
	if den == 0 {
		return 0, false
	}
	return float64(n) / s0 * num / den, true
}

// LocalResult is one site's local Moran statistic (LISA).
type LocalResult struct {
	I float64 // local Moran I_i
	Z float64 // permutation z-score (conditional permutation)
}

// Local computes local Moran's I for every site:
//
//	I_i = (z_i/m2) · Σ_j w_ij·z_j,   m2 = Σ_k z_k²/n
//
// with conditional-permutation z-scores (value i fixed, others shuffled)
// when perms > 0.
func Local(values []float64, w *weights.Matrix, perms int, rng *rand.Rand) ([]LocalResult, error) {
	n := len(values)
	if n != w.N {
		return nil, fmt.Errorf("moran: %d values but weight matrix over %d sites", n, w.N)
	}
	if n < 3 {
		return nil, fmt.Errorf("moran: need at least 3 sites, got %d", n)
	}
	if perms > 0 && rng == nil {
		return nil, fmt.Errorf("moran: permutation test requires a rng")
	}
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= float64(n)
	z := make([]float64, n)
	m2 := 0.0
	for i, v := range values {
		z[i] = v - mean
		m2 += z[i] * z[i]
	}
	m2 /= float64(n)
	if m2 == 0 {
		return nil, fmt.Errorf("moran: constant values (zero variance)")
	}
	out := make([]LocalResult, n)
	lag := func(i int, zs []float64) float64 {
		s := 0.0
		w.ForEachNeighbor(i, func(j int, wij float64) { s += wij * zs[j] })
		return s
	}
	for i := 0; i < n; i++ {
		out[i].I = z[i] / m2 * lag(i, z)
	}
	if perms <= 0 {
		return out, nil
	}
	// Conditional permutation: for each site, shuffle the other z values
	// among its neighbours. Sampling neighbour values uniformly from
	// z \ {z_i} is equivalent and cheaper.
	for i := 0; i < n; i++ {
		deg := w.Degree(i)
		if deg == 0 {
			continue
		}
		samples := make([]float64, perms)
		for p := range samples {
			s := 0.0
			w.ForEachNeighbor(i, func(_ int, wij float64) {
				// Draw a random other site.
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				s += wij * z[j]
			})
			samples[p] = z[i] / m2 * s
		}
		mean, std := meanStd(samples)
		if std > 0 {
			out[i].Z = (out[i].I - mean) / std
		}
	}
	return out, nil
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
