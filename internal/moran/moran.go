// Package moran implements Moran's I (Table 1 of the paper, [37, 60, 93]):
// global spatial autocorrelation of a measured attribute, with a
// permutation significance test and the local variant (LISA).
package moran

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"geostat/internal/parallel"
	"geostat/internal/weights"
)

// Options configures a permutation test. Permutation p shuffles its own
// copy of the values with an RNG derived deterministically from (Seed, p),
// so results are bit-identical for every Workers value.
type Options struct {
	// Perms is the number of permutations; 0 skips the test.
	Perms int
	// Seed drives the permutation RNGs.
	Seed int64
	// Workers fans permutations out across goroutines (0/1 serial, <0
	// GOMAXPROCS).
	Workers int
	// Ctx optionally bounds the permutation test: workers check it between
	// task chunks and the entry point returns ctx.Err() (with a nil
	// result) when it fires. Nil means no cancellation.
	Ctx context.Context
}

// context returns the effective context of the test.
func (o *Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Result is a global Moran's I with its permutation test.
type Result struct {
	I        float64 // observed statistic
	Expected float64 // E[I] under randomisation = −1/(n−1)
	PermMean float64 // mean of the permutation distribution
	PermStd  float64 // standard deviation of the permutation distribution
	Z        float64 // (I − PermMean)/PermStd
	P        float64 // two-sided pseudo p-value: (r+1)/(perms+1), r = #{|I_perm−mean| >= |I−mean|}
	Perms    int
}

// Global computes Moran's I over the weight matrix w:
//
//	I = (n/S0) · Σ_ij w_ij·(z_i − z̄)(z_j − z̄) / Σ_i (z_i − z̄)²
//
// perms > 0 adds a permutation test driven by rng (values are shuffled,
// geometry fixed). Equivalent to GlobalOpt with a seed drawn from rng and
// every core.
func Global(values []float64, w *weights.Matrix, perms int, rng *rand.Rand) (*Result, error) {
	if perms > 0 && rng == nil {
		return nil, fmt.Errorf("moran: permutation test requires a rng")
	}
	var seed int64
	if rng != nil {
		seed = rng.Int63()
	}
	return GlobalOpt(values, w, Options{Perms: perms, Seed: seed, Workers: -1})
}

// GlobalOpt computes Moran's I with an explicit permutation-test
// configuration; permutations fan out across opt.Workers with results
// bit-identical for every worker count.
func GlobalOpt(values []float64, w *weights.Matrix, opt Options) (*Result, error) {
	n := len(values)
	if n != w.N {
		return nil, fmt.Errorf("moran: %d values but weight matrix over %d sites", n, w.N)
	}
	if n < 3 {
		return nil, fmt.Errorf("moran: need at least 3 sites, got %d", n)
	}
	s0 := w.S0()
	if s0 == 0 {
		return nil, fmt.Errorf("moran: weight matrix is empty")
	}
	obs, ok := statistic(values, w, s0)
	if !ok {
		return nil, fmt.Errorf("moran: constant values (zero variance)")
	}
	res := &Result{
		I:        obs,
		Expected: -1 / float64(n-1),
		Perms:    opt.Perms,
	}
	if opt.Perms <= 0 {
		return res, nil
	}
	samples, err := permuteSamples(values, opt, func(perm []float64) float64 {
		s, _ := statistic(perm, w, s0)
		return s
	})
	if err != nil {
		return nil, err
	}
	res.PermMean, res.PermStd, res.Z, res.P = permSummary(obs, samples)
	return res, nil
}

// permuteSamples evaluates stat on opt.Perms random permutations of
// values, fanning out across opt.Workers. Each permutation copies values
// into a per-worker buffer and shuffles it with its own derived RNG — no
// cross-permutation state, so any worker count gives the same samples.
func permuteSamples(values []float64, opt Options, stat func(perm []float64) float64) ([]float64, error) {
	n := len(values)
	samples := make([]float64, opt.Perms)
	_, err := parallel.MonteCarloScratchCtx(opt.context(), opt.Perms, opt.Workers, opt.Seed,
		func() []float64 { return make([]float64, n) },
		func(rng *rand.Rand, perm []float64, p int) {
			copy(perm, values)
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			samples[p] = stat(perm)
		})
	if err != nil {
		return nil, err
	}
	return samples, nil
}

// permSummary reduces a permutation distribution to its mean/std, the
// observed z-score, and the two-sided pseudo p-value (r+1)/(perms+1).
func permSummary(obs float64, samples []float64) (mean, std, z, p float64) {
	mean, std = meanStd(samples)
	if std > 0 {
		z = (obs - mean) / std
	}
	extreme := 0
	for _, s := range samples {
		if math.Abs(s-mean) >= math.Abs(obs-mean) {
			extreme++
		}
	}
	p = float64(extreme+1) / float64(len(samples)+1)
	return mean, std, z, p
}

// statistic computes I; ok=false when the values have zero variance.
func statistic(values []float64, w *weights.Matrix, s0 float64) (float64, bool) {
	n := len(values)
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= float64(n)
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		zi := values[i] - mean
		den += zi * zi
		w.ForEachNeighbor(i, func(j int, wij float64) {
			num += wij * zi * (values[j] - mean)
		})
	}
	if den == 0 {
		return 0, false
	}
	return float64(n) / s0 * num / den, true
}

// LocalResult is one site's local Moran statistic (LISA).
type LocalResult struct {
	I float64 // local Moran I_i
	Z float64 // permutation z-score (conditional permutation)
}

// Local computes local Moran's I for every site:
//
//	I_i = (z_i/m2) · Σ_j w_ij·z_j,   m2 = Σ_k z_k²/n
//
// with conditional-permutation z-scores (value i fixed, others shuffled)
// when perms > 0. Equivalent to LocalOpt with a seed drawn from rng and
// every core.
func Local(values []float64, w *weights.Matrix, perms int, rng *rand.Rand) ([]LocalResult, error) {
	if perms > 0 && rng == nil {
		return nil, fmt.Errorf("moran: permutation test requires a rng")
	}
	var seed int64
	if rng != nil {
		seed = rng.Int63()
	}
	return LocalOpt(values, w, Options{Perms: perms, Seed: seed, Workers: -1})
}

// LocalOpt computes local Moran's I with an explicit permutation-test
// configuration; sites fan out across opt.Workers, each drawing its
// conditional permutations from an RNG derived from (opt.Seed, site), so
// the z-scores are bit-identical for every worker count.
func LocalOpt(values []float64, w *weights.Matrix, opt Options) ([]LocalResult, error) {
	n := len(values)
	if n != w.N {
		return nil, fmt.Errorf("moran: %d values but weight matrix over %d sites", n, w.N)
	}
	if n < 3 {
		return nil, fmt.Errorf("moran: need at least 3 sites, got %d", n)
	}
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= float64(n)
	z := make([]float64, n)
	m2 := 0.0
	for i, v := range values {
		z[i] = v - mean
		m2 += z[i] * z[i]
	}
	m2 /= float64(n)
	if m2 == 0 {
		return nil, fmt.Errorf("moran: constant values (zero variance)")
	}
	out := make([]LocalResult, n)
	lag := func(i int, zs []float64) float64 {
		s := 0.0
		w.ForEachNeighbor(i, func(j int, wij float64) { s += wij * zs[j] })
		return s
	}
	for i := 0; i < n; i++ {
		out[i].I = z[i] / m2 * lag(i, z)
	}
	if opt.Perms <= 0 {
		return out, nil
	}
	// Conditional permutation: for each site, shuffle the other z values
	// among its neighbours. Sampling neighbour values uniformly from
	// z \ {z_i} is equivalent and cheaper. Sites fan out across workers;
	// each site's draws come from its own (Seed, i)-derived RNG and only
	// out[i] is written, so any worker count gives the same z-scores.
	_, mcErr := parallel.MonteCarloScratchCtx(opt.context(), n, opt.Workers, opt.Seed,
		func() []float64 { return make([]float64, opt.Perms) },
		func(rng *rand.Rand, samples []float64, i int) {
			if w.Degree(i) == 0 {
				return
			}
			for p := range samples {
				s := 0.0
				w.ForEachNeighbor(i, func(_ int, wij float64) {
					// Draw a random other site.
					j := rng.Intn(n - 1)
					if j >= i {
						j++
					}
					s += wij * z[j]
				})
				samples[p] = z[i] / m2 * s
			}
			mean, std := meanStd(samples)
			if std > 0 {
				out[i].Z = (out[i].I - mean) / std
			}
		})
	if mcErr != nil {
		return nil, mcErr
	}
	return out, nil
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
