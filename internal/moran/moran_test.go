package moran

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/geom"
	"geostat/internal/weights"
)

func gridPoints(n int) []geom.Point {
	pts := make([]geom.Point, 0, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			pts = append(pts, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	return pts
}

func bandW(t *testing.T, pts []geom.Point) *weights.Matrix {
	t.Helper()
	w, err := weights.DistanceBand(pts, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return w.RowStandardize()
}

func TestValidation(t *testing.T) {
	pts := gridPoints(3)
	w := bandW(t, pts)
	if _, err := Global([]float64{1, 2}, w, 0, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	constVals := make([]float64, len(pts))
	if _, err := Global(constVals, w, 0, nil); err == nil {
		t.Error("constant values accepted")
	}
	vals := make([]float64, len(pts))
	for i := range vals {
		vals[i] = float64(i)
	}
	if _, err := Global(vals, w, 100, nil); err == nil {
		t.Error("perms without rng accepted")
	}
	if _, err := Local(vals[:4], w, 0, nil); err == nil {
		t.Error("Local length mismatch accepted")
	}
	if _, err := Local(constVals, w, 0, nil); err == nil {
		t.Error("Local constant values accepted")
	}
}

// A smooth gradient is strongly positively autocorrelated.
func TestGlobalPositiveOnGradient(t *testing.T) {
	pts := gridPoints(10)
	w := bandW(t, pts)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.X + p.Y
	}
	res, err := Global(vals, w, 199, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.I < 0.7 {
		t.Errorf("gradient I = %v, want strongly positive", res.I)
	}
	if res.Z < 3 {
		t.Errorf("gradient z = %v, want large", res.Z)
	}
	if res.P > 0.02 {
		t.Errorf("gradient p = %v, want significant", res.P)
	}
	if math.Abs(res.Expected-(-1.0/99)) > 1e-12 {
		t.Errorf("Expected = %v", res.Expected)
	}
}

// A checkerboard is strongly negatively autocorrelated.
func TestGlobalNegativeOnCheckerboard(t *testing.T) {
	pts := gridPoints(10)
	w := bandW(t, pts)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		if (int(p.X)+int(p.Y))%2 == 0 {
			vals[i] = 1
		} else {
			vals[i] = -1
		}
	}
	res, err := Global(vals, w, 199, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.I > -0.9 {
		t.Errorf("checkerboard I = %v, want ≈ −1", res.I)
	}
	if res.Z > -3 {
		t.Errorf("checkerboard z = %v, want very negative", res.Z)
	}
}

// Random values: I near E[I], insignificant.
func TestGlobalRandomIsInsignificant(t *testing.T) {
	pts := gridPoints(10)
	w := bandW(t, pts)
	r := rand.New(rand.NewSource(3))
	insignificant := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		vals := make([]float64, len(pts))
		for i := range vals {
			vals[i] = r.NormFloat64()
		}
		res, err := Global(vals, w, 199, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.P > 0.05 {
			insignificant++
		}
	}
	if insignificant < trials-2 {
		t.Errorf("random fields significant too often: %d/%d insignificant", insignificant, trials)
	}
}

func TestGlobalWithoutPerms(t *testing.T) {
	pts := gridPoints(5)
	w := bandW(t, pts)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.X
	}
	res, err := Global(vals, w, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Z != 0 || res.P != 0 || res.Perms != 0 {
		t.Errorf("no-perm fields populated: %+v", res)
	}
}

// Local Moran: sites inside a high-value blob get positive I_i; sites on a
// sharp high/low boundary get negative I_i.
func TestLocalHotspot(t *testing.T) {
	pts := gridPoints(12)
	w := bandW(t, pts)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		if p.X >= 4 && p.X < 8 && p.Y >= 4 && p.Y < 8 {
			vals[i] = 10
		}
	}
	res, err := Local(vals, w, 99, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	// Center of the blob (6,6) = index 6*12+6.
	center := res[6*12+6]
	if center.I <= 0 {
		t.Errorf("blob center I_i = %v, want positive", center.I)
	}
	if center.Z < 2 {
		t.Errorf("blob center z = %v, want significant", center.Z)
	}
	// A far-away background site: near zero.
	bg := res[0]
	if math.Abs(bg.I) > math.Abs(center.I)/2 {
		t.Errorf("background I_i = %v vs center %v", bg.I, center.I)
	}
}

// Property: the weighted mean of local Moran values equals global I (for
// row-standardised weights, Σ I_i / n relates to I by Σ I_i = n·I·(S0/n)).
func TestLocalSumMatchesGlobal(t *testing.T) {
	pts := gridPoints(8)
	w := bandW(t, pts)
	r := rand.New(rand.NewSource(5))
	vals := make([]float64, len(pts))
	for i := range vals {
		vals[i] = r.NormFloat64() + pts[i].X/4
	}
	g, err := Global(vals, w, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	local, err := Local(vals, w, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, l := range local {
		sum += l.I
	}
	// Σ I_i = (Σ_i z_i Σ_j w_ij z_j)/m2 and I = n/S0 · (same)/Σz² →
	// Σ I_i = I · S0 (with m2 = Σz²/n).
	if math.Abs(sum-g.I*w.S0()) > 1e-9 {
		t.Errorf("Σ local = %v, want I·S0 = %v", sum, g.I*w.S0())
	}
}
