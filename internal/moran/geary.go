package moran

import (
	"fmt"
	"math/rand"

	"geostat/internal/geom"
	"geostat/internal/weights"
)

// GearyResult is a global Geary's C with its permutation test. Geary's C
// complements Moran's I: it is driven by squared differences between
// neighbours, so it is more sensitive to local-scale departures. Under no
// autocorrelation E[C] = 1; C < 1 indicates positive autocorrelation,
// C > 1 negative.
type GearyResult struct {
	C        float64
	Expected float64 // 1 under randomisation
	PermMean float64
	PermStd  float64
	Z        float64
	P        float64 // two-sided pseudo p-value
	Perms    int
}

// Geary computes Geary's contiguity ratio
//
//	C = (n−1)·Σ_ij w_ij·(x_i − x_j)² / (2·S0·Σ_i (x_i − x̄)²)
//
// with an optional permutation test (perms > 0, rng required). Equivalent
// to GearyOpt with a seed drawn from rng and every core.
func Geary(values []float64, w *weights.Matrix, perms int, rng *rand.Rand) (*GearyResult, error) {
	if perms > 0 && rng == nil {
		return nil, fmt.Errorf("moran: permutation test requires a rng")
	}
	var seed int64
	if rng != nil {
		seed = rng.Int63()
	}
	return GearyOpt(values, w, Options{Perms: perms, Seed: seed, Workers: -1})
}

// GearyOpt computes Geary's C with an explicit permutation-test
// configuration; permutations fan out across opt.Workers with results
// bit-identical for every worker count.
func GearyOpt(values []float64, w *weights.Matrix, opt Options) (*GearyResult, error) {
	n := len(values)
	if n != w.N {
		return nil, fmt.Errorf("moran: %d values but weight matrix over %d sites", n, w.N)
	}
	if n < 3 {
		return nil, fmt.Errorf("moran: need at least 3 sites, got %d", n)
	}
	s0 := w.S0()
	if s0 == 0 {
		return nil, fmt.Errorf("moran: weight matrix is empty")
	}
	obs, ok := gearyStatistic(values, w, s0)
	if !ok {
		return nil, fmt.Errorf("moran: constant values (zero variance)")
	}
	res := &GearyResult{C: obs, Expected: 1, Perms: opt.Perms}
	if opt.Perms <= 0 {
		return res, nil
	}
	samples, err := permuteSamples(values, opt, func(perm []float64) float64 {
		s, _ := gearyStatistic(perm, w, s0)
		return s
	})
	if err != nil {
		return nil, err
	}
	res.PermMean, res.PermStd, res.Z, res.P = permSummary(obs, samples)
	return res, nil
}

func gearyStatistic(values []float64, w *weights.Matrix, s0 float64) (float64, bool) {
	n := len(values)
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= float64(n)
	den := 0.0
	for _, v := range values {
		den += (v - mean) * (v - mean)
	}
	if den == 0 {
		return 0, false
	}
	num := 0.0
	for i := 0; i < n; i++ {
		xi := values[i]
		w.ForEachNeighbor(i, func(j int, wij float64) {
			d := xi - values[j]
			num += wij * d * d
		})
	}
	return float64(n-1) * num / (2 * s0 * den), true
}

// CorrelogramPoint is Moran's I evaluated with a distance-band weight
// matrix of one radius.
type CorrelogramPoint struct {
	Radius float64
	Result *Result
}

// Correlogram computes Moran's I at each distance band radius — the
// spatial correlogram showing how autocorrelation decays with scale (the
// autocorrelation analogue of the K-function's threshold sweep). Radii
// must be positive and increasing. Bands with an empty weight matrix are
// skipped.
func Correlogram(pts []geom.Point, values []float64, radii []float64, perms int, rng *rand.Rand) ([]CorrelogramPoint, error) {
	if len(pts) != len(values) {
		return nil, fmt.Errorf("moran: %d points but %d values", len(pts), len(values))
	}
	prev := 0.0
	for i, r := range radii {
		if !(r > prev) {
			return nil, fmt.Errorf("moran: radii must be positive and strictly increasing (index %d)", i)
		}
		prev = r
	}
	var out []CorrelogramPoint
	for _, r := range radii {
		w, err := weights.DistanceBand(pts, r)
		if err != nil {
			return nil, err
		}
		w.RowStandardize()
		res, err := Global(values, w, perms, rng)
		if err != nil {
			continue // empty band at this radius: skip
		}
		out = append(out, CorrelogramPoint{Radius: r, Result: res})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("moran: every distance band was empty")
	}
	return out, nil
}

// Quadrant classifies a site on the Moran scatterplot.
type Quadrant int

const (
	// HH: high value among high neighbours (hot spot core).
	HH Quadrant = iota
	// LL: low among low (cold spot core).
	LL
	// HL: high among low (spatial outlier).
	HL
	// LH: low among high (spatial outlier).
	LH
)

// String returns the quadrant label.
func (q Quadrant) String() string {
	switch q {
	case HH:
		return "HH"
	case LL:
		return "LL"
	case HL:
		return "HL"
	case LH:
		return "LH"
	}
	return fmt.Sprintf("Quadrant(%d)", int(q))
}

// Quadrants returns each site's Moran-scatterplot quadrant: the sign of
// its own deviation from the mean crossed with the sign of its spatially
// lagged deviation. Combined with Local's z-scores this is the standard
// LISA cluster map (HH/LL significant cores, HL/LH significant outliers).
func Quadrants(values []float64, w *weights.Matrix) ([]Quadrant, error) {
	n := len(values)
	if n != w.N {
		return nil, fmt.Errorf("moran: %d values but weight matrix over %d sites", n, w.N)
	}
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= float64(n)
	out := make([]Quadrant, n)
	for i := 0; i < n; i++ {
		zi := values[i] - mean
		lag := 0.0
		w.ForEachNeighbor(i, func(j int, wij float64) { lag += wij * (values[j] - mean) })
		switch {
		case zi >= 0 && lag >= 0:
			out[i] = HH
		case zi < 0 && lag < 0:
			out[i] = LL
		case zi >= 0:
			out[i] = HL
		default:
			out[i] = LH
		}
	}
	return out, nil
}
