package obs

import "sync/atomic"

// Counter is a monotonically increasing int64. The zero value is usable,
// but counters are normally created through Registry.Counter so they show
// up in /metrics.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must be non-negative (counters only go up). Negative
// deltas are dropped rather than silently corrupting rate queries.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an int64 that can go up and down (in-flight requests, cache
// occupancy).
type Gauge struct {
	v atomic.Int64
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
