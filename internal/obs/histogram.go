package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default bucket layout for request/stage latency
// histograms: upper bounds in seconds from 1ms to 30s, roughly
// logarithmic. p50/p90/p99 of a typical serving distribution land well
// inside the ladder; everything slower than 30s is lumped into +Inf.
var LatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket latency histogram. Observations are two
// atomic adds — no locks, no allocation — so it can sit on a hot request
// path. Bucket bounds are fixed at construction; counts are cumulative in
// the Prometheus sense only at export time (internally each bucket holds
// its own count).
type Histogram struct {
	// bounds are the inclusive upper bounds (seconds), strictly increasing.
	bounds []float64
	// counts[i] counts observations v with bounds[i-1] < v <= bounds[i];
	// counts[len(bounds)] is the +Inf bucket.
	counts []atomic.Int64
	sumNS  atomic.Int64
}

// NewHistogram returns a histogram over the given upper bounds (seconds).
// Bounds must be strictly increasing; nil means LatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	// First bucket whose upper bound covers s; SearchFloat64s returns
	// len(bounds) when s exceeds every bound, which is the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed durations in seconds.
func (h *Histogram) Sum() float64 {
	return time.Duration(h.sumNS.Load()).Seconds()
}

// Quantile estimates the q-quantile (0 <= q <= 1) in seconds by linear
// interpolation inside the bucket holding the rank, the standard
// fixed-bucket estimate. Observations in the +Inf bucket are reported as
// the largest finite bound. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: no finite upper bound to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot returns the per-bucket counts, total and sum with one pass of
// atomic loads (values may skew slightly under concurrent writes, which
// Prometheus scrapes tolerate by design).
func (h *Histogram) snapshot() (buckets []int64, count int64, sum float64) {
	buckets = make([]int64, len(h.counts))
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
		count += buckets[i]
	}
	return buckets, count, time.Duration(h.sumNS.Load()).Seconds()
}
