// Package obs is the repository's observability layer: lock-cheap
// fixed-bucket latency histograms, monotonic counters and gauges behind a
// Registry exported in Prometheus text format, and lightweight span
// tracing threaded through context.Context. It is stdlib-only and owns no
// goroutines; everything here is safe for concurrent use.
//
// The paper's §2.4 asks for geospatial software whose performance claims
// are measurable; this package is how the serving layer (internal/serve)
// and the parallel engine (internal/parallel) expose per-stage timings and
// latency distributions without pulling in an external metrics dependency.
//
// # Naming convention (enforced by the geolint `obsname` analyzer)
//
// Metric names are lowercase snake_case, subsystem first, unit last:
//
//	<subsystem>_<stage...>_<unit>     e.g. geostatd_request_seconds
//
// The unit suffix is mandatory and constrained per metric kind:
//
//   - counters end in _total;
//   - gauges end in _inflight, _bytes, _count, _ratio or _seconds;
//   - histograms end in _seconds or _bytes.
//
// Variable dimensions (the tool name, an error kind) are labels, never
// name segments: one family `geostatd_request_seconds{tool="kdv"}`, not
// five families.
//
// Span names are dotted lowercase `tool.stage` paths of one to three
// segments, e.g. "kdv.compute", "kde.index_build", "parallel.for". The
// first segment names the subsystem that owns the stage; stages stay
// stable across algorithm variants so traces of a baseline and an
// accelerated method line up.
//
// See DESIGN.md ("Observability") for the full contract.
package obs

import (
	"fmt"
	"regexp"
	"strings"
)

// metricNameRE is the shape rule shared by every metric kind: at least two
// lowercase snake_case segments (subsystem plus unit).
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// spanNameRE matches dotted span names: 1–3 lowercase segments.
var spanNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){0,2}$`)

// unitSuffixes lists the allowed unit suffixes per metric kind.
var unitSuffixes = map[string][]string{
	"counter":   {"_total"},
	"gauge":     {"_inflight", "_bytes", "_count", "_ratio", "_seconds"},
	"histogram": {"_seconds", "_bytes"},
}

// ValidMetricName checks name against the naming convention for the given
// kind ("counter", "gauge" or "histogram"). It is the single source of
// truth used both by Registry (which panics at registration time) and by
// the geolint obsname analyzer (which flags violations statically).
func ValidMetricName(kind, name string) error {
	suffixes, ok := unitSuffixes[kind]
	if !ok {
		return fmt.Errorf("obs: unknown metric kind %q", kind)
	}
	if !metricNameRE.MatchString(name) {
		return fmt.Errorf("obs: %q is not a valid metric name (want lowercase snake_case: subsystem_stage_unit)", name)
	}
	for _, s := range suffixes {
		if strings.HasSuffix(name, s) {
			return nil
		}
	}
	return fmt.Errorf("obs: %s name %q must end in %s", kind, name, strings.Join(suffixes, "|"))
}

// ValidSpanName checks name against the span naming convention: dotted
// lowercase `tool.stage`, one to three segments.
func ValidSpanName(name string) error {
	if !spanNameRE.MatchString(name) {
		return fmt.Errorf("obs: %q is not a valid span name (want dotted lowercase tool.stage, 1-3 segments)", name)
	}
	return nil
}
