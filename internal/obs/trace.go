package obs

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Span is one timed stage of a request. Spans form a tree: NewTrace
// starts a root, Trace starts a child of the span active in ctx. All
// methods are nil-safe — code instruments itself unconditionally with
// `ctx, sp := obs.Trace(ctx, "tool.stage"); defer sp.End()` and pays
// almost nothing when no trace is active (one context value lookup).
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span (point counts, worker
// counts, chosen method).
type Attr struct {
	Key, Value string
}

type spanCtxKey struct{}

// NewTrace starts a root span and returns a context that makes it the
// active span: every obs.Trace below inherits into its tree. Unlike
// Trace, NewTrace always records — it is the serving layer's explicit
// opt-in, one per request.
func NewTrace(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// Trace starts a child of the active span in ctx, returning a context
// with the child active. When no trace is active it returns ctx unchanged
// and a nil span whose methods no-op, so library code can instrument
// itself without caring whether anyone is watching.
func Trace(ctx context.Context, name string) (context.Context, *Span) {
	parent := ActiveSpan(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, s)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// ActiveSpan returns the span active in ctx, or nil.
func ActiveSpan(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// End stops the span's clock. Idempotent; safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Duration returns the recorded duration (time since start for a span
// still running).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SetAttr annotates the span. Safe on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(key string, v int64) {
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// SpanTree is an immutable JSON-ready snapshot of a span and its
// children, served at /debug/trace/last and printed for slow requests.
type SpanTree struct {
	Name       string      `json:"name"`
	DurationMS float64     `json:"duration_ms"`
	Attrs      []Attr      `json:"attrs,omitempty"`
	Children   []*SpanTree `json:"children,omitempty"`
}

// Tree snapshots the span (typically after End). Safe on nil.
func (s *Span) Tree() *SpanTree {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	t := &SpanTree{
		Name:       s.name,
		DurationMS: float64(s.dur.Nanoseconds()) / 1e6,
		Attrs:      append([]Attr(nil), s.attrs...),
	}
	if !s.ended {
		t.DurationMS = float64(time.Since(s.start).Nanoseconds()) / 1e6
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		t.Children = append(t.Children, c.Tree())
	}
	return t
}

// StageNames returns the tree's span names in preorder — the flat
// "parse → compute → encode" view tests and logs assert on.
func (t *SpanTree) StageNames() []string {
	if t == nil {
		return nil
	}
	names := []string{t.Name}
	for _, c := range t.Children {
		names = append(names, c.StageNames()...)
	}
	return names
}

// Render returns an indented one-line-per-span rendering for logs:
//
//	kdv 182.4ms tool=kdv
//	  kdv.parse 0.1ms
//	  kdv.compute 180.9ms
//	    parallel.for 180.8ms n=128 workers=8
func (t *SpanTree) Render() string {
	var b strings.Builder
	t.render(&b, 0)
	return strings.TrimRight(b.String(), "\n")
}

func (t *SpanTree) render(b *strings.Builder, depth int) {
	if t == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s %.1fms", t.Name, t.DurationMS)
	for _, a := range t.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	for _, c := range t.Children {
		c.render(b, depth+1)
	}
}
