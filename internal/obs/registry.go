package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one metric dimension (e.g. tool="kdv"). Variable dimensions go
// in labels, never in the metric name — see the package naming convention.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry holds named metric families and renders them in Prometheus
// text exposition format. Metric lookups are get-or-create: asking twice
// for the same (name, labels) returns the same metric, so handlers can
// resolve metrics per request without double registration. A Registry is
// typically per-server (tests spin up many servers; process-wide state
// would collide), unlike the process-wide expvar metrics it complements.
//
// Registration panics on a name that violates the naming convention or on
// a kind/help/buckets mismatch with an existing family: both are
// programming errors the geolint obsname analyzer catches statically, and
// failing fast beats exporting a corrupt families table.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help string
	kind       string    // "counter", "gauge" or "histogram"
	buckets    []float64 // histogram families only: bounds fixed at first registration
	series     map[string]*series
}

type series struct {
	labels []Label // sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() int64 // CounterFunc / GaugeFunc callback
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.series("counter", name, help, nil, nil, labels).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.series("gauge", name, help, nil, nil, labels).g
}

// Histogram returns the histogram for (name, labels), creating it on
// first use. All series of one family share the bucket bounds of the
// family's first registration (nil = LatencyBuckets); later calls may
// pass nil to reuse them, and panic on differing non-nil bounds.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.series("histogram", name, help, buckets, nil, labels).h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotonic counts owned elsewhere (e.g. cache eviction totals
// kept by the cache itself). fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.series("counter", name, help, nil, fn, labels)
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.series("gauge", name, help, nil, fn, labels)
}

// series returns the series for (name, labels) under the family of the
// given kind, creating family and series as needed. Lookup, contract
// checks, and creation all happen under r.mu so concurrent first touches
// of one series resolve to a single metric — the returned series is
// fully initialized (c/g/h set per kind, or fn for Func variants).
func (r *Registry) series(kind, name, help string, buckets []float64, fn func() int64, labels []Label) *series {
	if err := ValidMetricName(kind, name); err != nil {
		panic(err)
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := labelKey(ls)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		if kind == "histogram" {
			if buckets == nil {
				buckets = LatencyBuckets
			}
			f.buckets = append([]float64(nil), buckets...)
		}
		r.families[name] = f
	} else {
		if f.kind != kind {
			panic(fmt.Errorf("obs: %s registered as %s, requested as %s", name, f.kind, kind))
		}
		if f.help != help {
			panic(fmt.Errorf("obs: %s registered with help %q, requested with %q", name, f.help, help))
		}
		if kind == "histogram" && buckets != nil && !equalBounds(f.buckets, buckets) {
			panic(fmt.Errorf("obs: %s registered with buckets %v, requested with %v", name, f.buckets, buckets))
		}
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: ls}
		f.series[key] = s
	}
	if fn != nil {
		s.fn = fn
		return s
	}
	switch {
	case kind == "counter" && s.c == nil:
		s.c = &Counter{}
	case kind == "gauge" && s.g == nil:
		s.g = &Gauge{}
	case kind == "histogram" && s.h == nil:
		s.h = NewHistogram(f.buckets)
	}
	return s
}

// equalBounds reports whether two bucket ladders are identical.
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { //lint:allow floateq bounds are config literals; identity, not arithmetic, is compared
			return false
		}
	}
	return true
}

// labelKey is the canonical identity of a label set (keys pre-sorted).
func labelKey(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(';')
	}
	return b.String()
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4). Output order is deterministic: families sorted
// by name, series sorted by label key string.
//
// The registry lock is held only while snapshotting the family and
// series maps, never across writes: w is the scrape socket in
// production, and a slow scraper must not stall every metric
// get-or-create in request handlers (locksafe enforces this). The
// pointers copied out stay safe to read unlocked — family metadata is
// immutable after creation and series values are read through atomics
// or the histogram's own lock.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type famSnapshot struct {
		f      *family
		series []*series
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name) //lint:allow maporder names are sorted before use
	}
	sort.Strings(names)
	snaps := make([]famSnapshot, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k) //lint:allow maporder keys are sorted before use
		}
		sort.Strings(keys)
		ss := make([]*series, 0, len(keys))
		for _, k := range keys {
			ss = append(ss, f.series[k])
		}
		snaps = append(snaps, famSnapshot{f: f, series: ss})
	}
	r.mu.Unlock()

	for _, snap := range snaps {
		f := snap.f
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range snap.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case f.kind == "histogram" && s.h != nil:
		buckets, count, sum := s.h.snapshot()
		cum := int64(0)
		for i, c := range buckets {
			cum += c
			le := "+Inf"
			if i < len(s.h.bounds) {
				le = formatFloat(s.h.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, labelString(s.labels, L("le", le)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(s.labels), formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(s.labels), count)
		return err
	default:
		var v int64
		switch {
		case s.fn != nil:
			v = s.fn()
		case s.c != nil:
			v = s.c.Value()
		case s.g != nil:
			v = s.g.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels), v)
		return err
	}
}

// labelString renders {k1="v1",k2="v2"} (empty string for no labels).
// extra labels (the histogram le) are appended after the sorted base set.
func labelString(ls []Label, extra ...Label) string {
	all := append(append([]Label(nil), ls...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes backslash, quote and newline per the exposition
// format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp escapes backslash and newline in HELP text per the
// exposition format (quotes are legal there, unlike in label values).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
