package obs_test

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"geostat/internal/obs"
)

// TestRegistryConcurrentStress hammers one registry from many goroutines —
// get-or-create races, hot-path observations, and concurrent scrapes —
// and is meant to run under -race. Raw goroutines are fine here: test
// code is outside the norawgoroutine invariant, and the point is maximal
// scheduling chaos.
func TestRegistryConcurrentStress(t *testing.T) {
	r := obs.NewRegistry()
	tools := []string{"kdv", "kfunction", "moran", "generalg", "idw"}
	const (
		goroutines = 16
		ops        = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				tool := tools[(g+i)%len(tools)]
				switch i % 4 {
				case 0:
					r.Counter("geostatd_requests_total", "req", obs.L("tool", tool)).Inc()
				case 1:
					r.Histogram("geostatd_request_seconds", "lat", nil, obs.L("tool", tool)).
						Observe(time.Duration(i) * time.Microsecond)
				case 2:
					r.Gauge("geostatd_requests_inflight", "now").Add(1)
					r.Gauge("geostatd_requests_inflight", "now").Add(-1)
				case 3:
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Errorf("scrape: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	var total int64
	for _, tool := range tools {
		total += r.Counter("geostatd_requests_total", "req", obs.L("tool", tool)).Value()
	}
	if want := int64(goroutines * ops / 4); total != want {
		t.Fatalf("requests_total across tools = %d, want %d", total, want)
	}
	if got := r.Gauge("geostatd_requests_inflight", "now").Value(); got != 0 {
		t.Fatalf("inflight gauge = %d, want 0 after balanced adds", got)
	}
	var hcount int64
	for _, tool := range tools {
		hcount += r.Histogram("geostatd_request_seconds", "lat", nil, obs.L("tool", tool)).Count()
	}
	if want := int64(goroutines * ops / 4); hcount != want {
		t.Fatalf("histogram count = %d, want %d", hcount, want)
	}
}

// TestHistogramConcurrentObserve checks that lock-free observation loses
// nothing under contention.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := obs.NewHistogram(nil)
	const (
		goroutines = 8
		ops        = 10000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				h.Observe(time.Duration(g*ops+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*ops {
		t.Fatalf("count = %d, want %d", got, goroutines*ops)
	}
}

// TestTraceConcurrentChildren attaches children to one root from many
// goroutines while another goroutine snapshots the tree — the shape the
// serving layer produces when a request's compute stage fans out.
func TestTraceConcurrentChildren(t *testing.T) {
	ctx, root := obs.NewTrace(context.Background(), "request")
	const goroutines = 8
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = root.Tree().StageNames()
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cctx, sp := obs.Trace(ctx, fmt.Sprintf("stage.g%d", g))
				_, inner := obs.Trace(cctx, "parallel.for")
				inner.End()
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	<-done
	root.End()
	tree := root.Tree()
	if got := len(tree.Children); got != goroutines*50 {
		t.Fatalf("children = %d, want %d", got, goroutines*50)
	}
}
