package obs_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"geostat/internal/obs"
)

func TestCounterGauge(t *testing.T) {
	var c obs.Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // negative deltas are dropped: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g obs.Gauge
	g.Add(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge after Set = %d, want 42", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := obs.NewHistogram([]float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(5 * time.Millisecond) // first bucket
	}
	for i := 0; i < 9; i++ {
		h.Observe(50 * time.Millisecond) // second bucket
	}
	h.Observe(10 * time.Second) // +Inf bucket

	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	wantSum := 90*0.005 + 9*0.05 + 10.0
	if got := h.Sum(); got < wantSum-1e-9 || got > wantSum+1e-9 {
		t.Fatalf("sum = %g, want %g", got, wantSum)
	}
	// p50 lands in the first bucket, p99 in the second, and the +Inf
	// observation is clamped to the largest finite bound.
	if p50 := h.Quantile(0.5); p50 <= 0 || p50 > 0.01 {
		t.Errorf("p50 = %g, want within (0, 0.01]", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 0.01 || p99 > 0.1 {
		t.Errorf("p99 = %g, want within (0.01, 0.1]", p99)
	}
	if p100 := h.Quantile(1); p100 > 1 {
		t.Errorf("p100 = %g, want clamped to the largest finite bound", p100)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := obs.NewHistogram(nil)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Counter("geostatd_requests_total", "requests", obs.L("tool", "kdv"))
	b := r.Counter("geostatd_requests_total", "requests", obs.L("tool", "kdv"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := r.Counter("geostatd_requests_total", "requests", obs.L("tool", "idw"))
	if a == other {
		t.Fatal("distinct labels share a counter")
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("geostatd_requests_total", "requests per tool", obs.L("tool", "kdv")).Add(3)
	r.Counter("geostatd_requests_total", "requests per tool", obs.L("tool", "idw")).Inc()
	r.Gauge("geostatd_requests_inflight", "executing now").Set(2)
	r.CounterFunc("geostatd_cache_hits_total", "cache hits", func() int64 { return 7 })
	h := r.Histogram("geostatd_request_seconds", "latency", []float64{0.1, 1}, obs.L("tool", "kdv"))
	h.Observe(50 * time.Millisecond)
	h.Observe(500 * time.Millisecond)
	h.Observe(5 * time.Second)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP geostatd_cache_hits_total cache hits
# TYPE geostatd_cache_hits_total counter
geostatd_cache_hits_total 7
# HELP geostatd_request_seconds latency
# TYPE geostatd_request_seconds histogram
geostatd_request_seconds_bucket{tool="kdv",le="0.1"} 1
geostatd_request_seconds_bucket{tool="kdv",le="1"} 2
geostatd_request_seconds_bucket{tool="kdv",le="+Inf"} 3
geostatd_request_seconds_sum{tool="kdv"} 5.55
geostatd_request_seconds_count{tool="kdv"} 3
# HELP geostatd_requests_inflight executing now
# TYPE geostatd_requests_inflight gauge
geostatd_requests_inflight 2
# HELP geostatd_requests_total requests per tool
# TYPE geostatd_requests_total counter
geostatd_requests_total{tool="idw"} 1
geostatd_requests_total{tool="kdv"} 3
`
	if got := b.String(); got != want {
		t.Errorf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := obs.NewRegistry()
	for _, tc := range []struct {
		kind, name string
	}{
		{"counter", "geostatd_requests"},     // missing _total
		{"counter", "Geostatd_Errors_total"}, // upper case
		{"gauge", "geostatd_inflight_total"}, // counter unit on a gauge
		{"histogram", "geostatd_request_total"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s %q: registration did not panic", tc.kind, tc.name)
				}
			}()
			switch tc.kind {
			case "counter":
				r.Counter(tc.name, "")
			case "gauge":
				r.Gauge(tc.name, "")
			case "histogram":
				r.Histogram(tc.name, "", nil)
			}
		}()
	}
}

// TestRegistryConcurrentFirstTouch is the regression test for the
// get-or-create race: creation used to happen after the registry lock was
// released, so two goroutines first-touching one series could each create
// (and one overwrite) the metric, losing increments. Run under -race.
func TestRegistryConcurrentFirstTouch(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		r := obs.NewRegistry()
		const goroutines = 8
		var wg sync.WaitGroup
		counters := make([]*obs.Counter, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				c := r.Counter("geostatd_requests_total", "requests", obs.L("tool", "kdv"))
				c.Inc()
				counters[g] = c
			}(g)
		}
		wg.Wait()
		for g := 1; g < goroutines; g++ {
			if counters[g] != counters[0] {
				t.Fatal("concurrent first touch created distinct counters")
			}
		}
		if got := counters[0].Value(); got != goroutines {
			t.Fatalf("counter = %d, want %d (lost increments)", got, goroutines)
		}
	}
}

func TestRegistryRejectsHelpMismatch(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("geostatd_requests_total", "requests")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different help did not panic")
		}
	}()
	r.Counter("geostatd_requests_total", "something else")
}

func TestRegistryHistogramFamilyBuckets(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Histogram("geostatd_request_seconds", "latency", []float64{0.1, 1}, obs.L("tool", "kdv"))
	// nil buckets on a later series reuse the family's bounds.
	b := r.Histogram("geostatd_request_seconds", "latency", nil, obs.L("tool", "idw"))
	a.Observe(500 * time.Millisecond)
	b.Observe(500 * time.Millisecond)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`geostatd_request_seconds_bucket{tool="kdv",le="1"} 1`,
		`geostatd_request_seconds_bucket{tool="idw",le="1"} 1`,
	} {
		if !strings.Contains(sb.String(), line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, sb.String())
		}
	}
	// Matching non-nil bounds are accepted; differing bounds panic.
	r.Histogram("geostatd_request_seconds", "latency", []float64{0.1, 1}, obs.L("tool", "moran"))
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different buckets did not panic")
		}
	}()
	r.Histogram("geostatd_request_seconds", "latency", []float64{0.2, 2}, obs.L("tool", "idw"))
}

func TestWritePrometheusEscapesHelp(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("geostatd_requests_total", "line one\nwith \\ backslash")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP geostatd_requests_total line one\nwith \\ backslash` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Errorf("HELP line not escaped:\n%s", b.String())
	}
}

func TestRegistryRejectsKindMismatch(t *testing.T) {
	r := obs.NewRegistry()
	r.Gauge("geostatd_cache_bytes", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a gauge as a histogram did not panic")
		}
	}()
	r.Histogram("geostatd_cache_bytes", "", nil)
}

func TestValidNames(t *testing.T) {
	if err := obs.ValidMetricName("counter", "geostatd_requests_total"); err != nil {
		t.Errorf("valid counter name rejected: %v", err)
	}
	if err := obs.ValidMetricName("histogram", "geostatd_request_seconds"); err != nil {
		t.Errorf("valid histogram name rejected: %v", err)
	}
	if err := obs.ValidMetricName("counter", "requests"); err == nil {
		t.Error("single-segment name accepted")
	}
	if err := obs.ValidMetricName("nosuchkind", "a_total"); err == nil {
		t.Error("unknown kind accepted")
	}
	for _, good := range []string{"kdv", "kdv.compute", "kde.index_build", "parallel.for"} {
		if err := obs.ValidSpanName(good); err != nil {
			t.Errorf("valid span name %q rejected: %v", good, err)
		}
	}
	for _, bad := range []string{"", "KDV.compute", "kdv.", "a.b.c.d", "kdv compute"} {
		if err := obs.ValidSpanName(bad); err == nil {
			t.Errorf("invalid span name %q accepted", bad)
		}
	}
}

func TestTraceTree(t *testing.T) {
	ctx, root := obs.NewTrace(context.Background(), "request")
	root.SetAttr("tool", "kdv")

	cctx, parse := obs.Trace(ctx, "kdv.parse")
	if parse == nil {
		t.Fatal("child span under an active root is nil")
	}
	if obs.ActiveSpan(cctx) != parse {
		t.Fatal("child context does not carry the child span")
	}
	parse.End()

	cctx, compute := obs.Trace(ctx, "kdv.compute")
	_, inner := obs.Trace(cctx, "parallel.for")
	inner.SetAttrInt("n", 128)
	inner.End()
	compute.End()
	root.End()

	tree := root.Tree()
	got := tree.StageNames()
	want := []string{"request", "kdv.parse", "kdv.compute", "parallel.for"}
	if len(got) != len(want) {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stages = %v, want %v", got, want)
		}
	}
	r := tree.Render()
	for _, frag := range []string{"request", "kdv.parse", "tool=kdv", "n=128"} {
		if !strings.Contains(r, frag) {
			t.Errorf("rendered tree missing %q:\n%s", frag, r)
		}
	}
}

func TestTraceNoopWithoutRoot(t *testing.T) {
	ctx, sp := obs.Trace(context.Background(), "kdv.compute")
	if sp != nil {
		t.Fatal("span created without an active trace")
	}
	if obs.ActiveSpan(ctx) != nil {
		t.Fatal("context gained an active span from a no-op Trace")
	}
	// All methods must be nil-safe.
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 1)
	sp.End()
	if sp.Tree() != nil {
		t.Fatal("nil span produced a tree")
	}
	if sp.Duration() != 0 {
		t.Fatal("nil span has a duration")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	_, root := obs.NewTrace(context.Background(), "request")
	root.End()
	d := root.Duration()
	time.Sleep(2 * time.Millisecond)
	root.End()
	if root.Duration() != d {
		t.Fatal("second End changed the recorded duration")
	}
}
