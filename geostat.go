// Package geostat is a from-scratch, stdlib-only Go toolkit for large-scale
// geospatial analytics, reproducing the tool suite surveyed in
// "Large-scale Geospatial Analytics: Problems, Challenges, and
// Opportunities" (Chan, U, Choi, Xu, Cheng — SIGMOD-Companion 2023).
//
// Hotspot detection (Table 1 of the paper):
//
//   - KDV — kernel density visualization, with the naive O(XYn) baseline
//     and three accelerated paths: exact grid-cutoff, the SLAM-style exact
//     sweep line, (1±ε) bound-based approximation, and Hoeffding-sampled
//     approximation. Variants: NKDV (road networks), STKDV (space-time).
//   - IDW — inverse distance weighting (naive, kNN, cutoff radius).
//   - Kriging — ordinary kriging with variogram fitting.
//
// Correlation analysis:
//
//   - KFunction — Ripley's K with Monte-Carlo envelope plots; network and
//     spatiotemporal variants.
//   - MoranI / LocalMoran — global and local spatial autocorrelation.
//   - GeneralG / LocalGStar — Getis-Ord concentration statistics.
//   - DBSCAN / KMeans — spatial clustering.
//
// The package is a facade: each tool lives in its own internal package and
// is re-exported here with a uniform, option-struct API. Every tool takes
// explicit options, returns errors rather than panicking, and is
// deterministic given a seeded *rand.Rand.
//
// # Cancellation
//
// The heavy entry points are cancellable: KDVOptions, IDWOptions,
// KPlotOptions, MoranOptions and GetisOrdOptions carry an optional Ctx
// field (and KDVCtx / KFunctionCurveCtx accept a context directly). Worker
// pools inside internal/parallel check the context between work chunks, so
// a per-request timeout or client disconnect stops the computation within
// one chunk (≤ 256 iterations) and the entry point returns ctx.Err(). A
// nil Ctx means no cancellation; results are bit-identical whether or not
// a (live) context is supplied. This is what lets the geostatd serving
// layer (cmd/geostatd, internal/serve) abandon abandoned requests without
// leaking goroutines.
package geostat

import (
	"math/rand"

	"geostat/internal/dataset"
	"geostat/internal/geojson"
	"geostat/internal/geom"
	"geostat/internal/kernel"
	"geostat/internal/parallel"
	"geostat/internal/raster"
)

// NewRand returns a seeded random generator for the APIs that take a
// *rand.Rand (dataset generators, envelope plots, permutation tests).
// It is the only sanctioned constructor: building generators here keeps
// every random draw reproducible from a recorded seed, and the geolint
// seededrand analyzer flags ad-hoc rand.New / math/rand globals in
// production code.
func NewRand(seed int64) *rand.Rand { return parallel.NewRand(seed) }

// Point is a planar location (projected coordinates).
type Point = geom.Point

// BBox is an axis-aligned bounding box.
type BBox = geom.BBox

// NewBBox returns the bounding box of pts.
func NewBBox(pts []Point) BBox { return geom.NewBBox(pts) }

// PixelGrid is the X×Y evaluation raster of Definition 1.
type PixelGrid = geom.PixelGrid

// GridWindow selects a pixel sub-rectangle of a PixelGrid — the tile unit
// of sharded (windowed) KDV evaluation. The zero value means the whole
// grid.
type GridWindow = geom.GridWindow

// NewPixelGrid returns an nx×ny pixel grid over box.
func NewPixelGrid(box BBox, nx, ny int) PixelGrid { return geom.NewPixelGrid(box, nx, ny) }

// Heatmap is an evaluated surface: one float64 per grid pixel, with PNG and
// ASCII rendering.
type Heatmap = raster.Grid

// HeatRamp and GrayRamp are the built-in color ramps for Heatmap rendering.
var (
	HeatRamp = raster.HeatRamp
	GrayRamp = raster.GrayRamp
)

// ContourSegment is one straight piece of a Heatmap iso-line.
type ContourSegment = raster.Segment

// CountGrid rasterises points into per-pixel counts (the aggregation step
// for grid-based statistics such as Gi* hot-spot maps).
func CountGrid(pts []Point, spec PixelGrid) *Heatmap { return raster.CountGrid(pts, spec) }

// GeoJSON is a GeoJSON FeatureCollection builder for exporting events,
// contour outlines, and significant grid cells to QGIS/ArcGIS/web maps —
// the software-integration direction of the paper's §2.4.
type GeoJSON = geojson.FeatureCollection

// NewGeoJSON returns an empty GeoJSON feature collection.
func NewGeoJSON() *GeoJSON { return geojson.NewCollection() }

// ParseGeoJSON decodes and validates a GeoJSON FeatureCollection —
// the inverse of GeoJSON.Write.
func ParseGeoJSON(data []byte) (*GeoJSON, error) { return geojson.Parse(data) }

// ReadGeoJSONFile decodes a GeoJSON FeatureCollection from a file.
func ReadGeoJSONFile(path string) (*GeoJSON, error) { return geojson.ReadFile(path) }

// Dataset is a location dataset with optional event times and measured
// values (see the dataset generators in this package).
type Dataset = dataset.Dataset

// Kernel is a bandwidth-bound kernel function (Table 2 of the paper).
type Kernel = kernel.Kernel

// KernelType selects the kernel function.
type KernelType = kernel.Type

// Kernel types. Uniform, Epanechnikov, Quartic and Gaussian are the
// paper's Table 2; the rest are the additional kernels §2.4 names.
const (
	Uniform      = kernel.Uniform
	Triangular   = kernel.Triangular
	Epanechnikov = kernel.Epanechnikov
	Quartic      = kernel.Quartic
	Triweight    = kernel.Triweight
	Gaussian     = kernel.Gaussian
	Cosine       = kernel.Cosine
	Exponential  = kernel.Exponential
)

// NewKernel returns a kernel of the given type with bandwidth b > 0.
func NewKernel(t KernelType, b float64) (Kernel, error) { return kernel.New(t, b) }

// MustKernel is NewKernel that panics on error (for tests and constants).
func MustKernel(t KernelType, b float64) Kernel { return kernel.MustNew(t, b) }

// ParseKernel resolves a kernel name ("gaussian", "quartic", ...).
func ParseKernel(name string) (KernelType, error) { return kernel.Parse(name) }

// AllKernels returns every supported kernel type.
func AllKernels() []KernelType { return kernel.All() }
