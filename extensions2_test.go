package geostat

import (
	"math"
	"math/rand"
	"testing"
)

// Facade wiring for the second extension batch: Geary's C, LISA quadrants,
// cross-K, Knox, streaming KDV, contours, count grids.

func TestGearyFacade(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	d := UniformCSR(r, 300, box)
	WithField(r, d, func(p Point) float64 { return p.X }, 0.5)
	w, err := KNNWeights(d.Points(), 6)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GearyC(d.Values(), w, 99, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.C >= 1 {
		t.Errorf("gradient Geary C = %v, want < 1", g.C)
	}
	q, err := MoranQuadrants(d.Values(), w)
	if err != nil {
		t.Fatal(err)
	}
	hh, ll := 0, 0
	for _, v := range q {
		switch v {
		case QuadrantHH:
			hh++
		case QuadrantLL:
			ll++
		}
	}
	// A gradient field is dominated by HH and LL sites.
	if hh+ll < len(q)*3/4 {
		t.Errorf("gradient field HH+LL = %d of %d", hh+ll, len(q))
	}
}

func TestCrossKAndKnoxFacade(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	bars := UniformCSR(r, 20, box).Points()
	var crimes []Point
	for len(crimes) < 200 {
		c := bars[r.Intn(len(bars))]
		p := Point{X: c.X + r.NormFloat64()*2, Y: c.Y + r.NormFloat64()*2}
		if box.Contains(p) {
			crimes = append(crimes, p)
		}
	}
	if CrossKFunction(crimes, bars, 3) == 0 {
		t.Error("cross K zero on attracted types")
	}
	curve, err := CrossKFunctionCurve(crimes, bars, []float64{1, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	if curve[2] != CrossKFunction(crimes, bars, 9) {
		t.Error("cross curve disagrees with single threshold")
	}
	plot, err := CrossKFunctionPlot(crimes, bars, []float64{1, 3, 9}, 9, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if plot.RegimeAt(1) != RegimeClustered {
		t.Errorf("cross plot regime = %v", plot.RegimeAt(1))
	}

	d := SpatioTemporalOutbreak(r, 500, box, 0, 100, []OutbreakWave{
		{Center: Point{X: 30, Y: 30}, Sigma: 5, TimeMean: 25, TimeSigma: 6, Weight: 1},
		{Center: Point{X: 70, Y: 70}, Sigma: 5, TimeMean: 75, TimeSigma: 6, Weight: 1},
	}, 0.2)
	knox, err := KnoxTest(d.Points(), d.Times(), 5, 10, 99, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if knox.P > 0.05 {
		t.Errorf("Knox p = %v on interacting data", knox.P)
	}
}

func TestStreamingFacade(t *testing.T) {
	k := MustKernel(Quartic, 8)
	grid := NewPixelGrid(box, 20, 20)
	s, err := NewKDVStream(k, grid)
	if err != nil {
		t.Fatal(err)
	}
	s.Add(Point{X: 50, Y: 50})
	s.Add(Point{X: 20, Y: 20})
	s.Remove(Point{X: 20, Y: 20})
	if s.Count() != 1 {
		t.Errorf("Count = %d", s.Count())
	}
	single, err := KDV([]Point{{X: 50, Y: 50}}, KDVOptions{Kernel: k, Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := s.Snapshot().MaxAbsDiff(single); d > 1e-9 {
		t.Errorf("stream differs by %v", d)
	}

	r := rand.New(rand.NewSource(62))
	d2 := SpatioTemporalOutbreak(r, 200, box, 0, 50, nil, 1)
	w, err := NewKDVWindowStream(k, grid, d2.Points(), d2.Times(), 10)
	if err != nil {
		t.Fatal(err)
	}
	w.Advance(25)
	if w.Live() == 0 || w.Live() == 200 {
		t.Errorf("window Live = %d", w.Live())
	}
}

func TestContourFacade(t *testing.T) {
	pts := hotspotData(63, 3000).Points()
	grid := NewPixelGrid(box, 100, 100)
	hm, err := KDV(pts, KDVOptions{Kernel: MustKernel(Quartic, 8), Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	_, _, peak := hm.ArgMax()
	segs := hm.Contour(peak / 2)
	if len(segs) < 10 {
		t.Fatalf("only %d contour segments", len(segs))
	}
	// All half-peak contour points lie near the planted cluster (30, 60).
	for _, s := range segs {
		mid := Point{X: (s.A.X + s.B.X) / 2, Y: (s.A.Y + s.B.Y) / 2}
		if mid.Dist(Point{X: 30, Y: 60}) > 25 {
			t.Fatalf("contour point %v far from hotspot", mid)
		}
	}
	if hm.AreaAbove(peak/2) <= 0 {
		t.Error("hotspot area zero")
	}

	counts := CountGrid(pts, NewPixelGrid(box, 10, 10))
	if int(counts.Sum()) != len(pts) {
		t.Errorf("CountGrid sum %v, want %d", counts.Sum(), len(pts))
	}
}

func TestContourLevelSets(t *testing.T) {
	// Nested contours: higher levels enclose smaller areas.
	pts := hotspotData(64, 2000).Points()
	grid := NewPixelGrid(box, 80, 80)
	hm, err := KDV(pts, KDVOptions{Kernel: MustKernel(Quartic, 10), Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	_, _, peak := hm.ArgMax()
	prev := math.Inf(1)
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		a := hm.AreaAbove(peak * frac)
		if a >= prev {
			t.Fatalf("AreaAbove not nested at %v: %v >= %v", frac, a, prev)
		}
		prev = a
	}
}
