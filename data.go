package geostat

import (
	"io"
	"math/rand"

	"geostat/internal/dataset"
)

// Synthetic dataset generators — the deterministic stand-ins for the
// paper's access-gated real datasets (see DESIGN.md). All take an explicit
// *rand.Rand for reproducibility.

// GaussianCluster describes one planted hotspot.
type GaussianCluster = dataset.Cluster

// OutbreakWave describes one spatiotemporal outbreak wave.
type OutbreakWave = dataset.Wave

// UniformCSR returns n points uniform over box (complete spatial
// randomness — the K-function null model).
func UniformCSR(rng *rand.Rand, n int, box BBox) *Dataset {
	return dataset.UniformCSR(rng, n, box)
}

// GaussianClusters returns n points from a Gaussian-mixture hotspot process
// plus a uniform noise fraction.
func GaussianClusters(rng *rand.Rand, n int, box BBox, clusters []GaussianCluster, noise float64) *Dataset {
	return dataset.GaussianClusters(rng, n, box, clusters, noise)
}

// MaternCluster returns a Matérn cluster process (parents with Poisson
// children in discs) — the classic clustered null-alternative.
func MaternCluster(rng *rand.Rand, box BBox, kappa, mu, radius float64) *Dataset {
	return dataset.MaternCluster(rng, box, kappa, mu, radius)
}

// Dispersed returns n points from a sequential inhibition process (points
// repel within minDist).
func Dispersed(rng *rand.Rand, n int, box BBox, minDist float64) *Dataset {
	return dataset.Dispersed(rng, n, box, minDist)
}

// SpatioTemporalOutbreak returns n events from the given waves plus
// uniform space-time noise — the Figure 4/6 scenario.
func SpatioTemporalOutbreak(rng *rand.Rand, n int, box BBox, t0, t1 float64, waves []OutbreakWave, noise float64) *Dataset {
	return dataset.SpatioTemporalOutbreak(rng, n, box, t0, t1, waves, noise)
}

// WithField attaches measured values to d by sampling field plus Gaussian
// noise (input shape for IDW/Kriging/Moran/Getis-Ord).
func WithField(rng *rand.Rand, d *Dataset, field func(Point) float64, noiseSigma float64) *Dataset {
	return dataset.WithField(rng, d, field, noiseSigma)
}

// FromPoints builds a Dataset from points. The input slice is copied into
// the dataset's columnar storage and is not retained; callers may reuse or
// mutate pts afterwards.
func FromPoints(pts []Point) *Dataset { return dataset.FromPoints(pts) }

// NewDataset builds a Dataset from points plus optional parallel times and
// values columns (nil to omit). Column lengths must match len(pts) and all
// entries must be finite.
func NewDataset(pts []Point, times, values []float64) (*Dataset, error) {
	return dataset.New(pts, times, values)
}

// SampleFromIntensity draws n points from an unnormalised intensity
// surface (e.g. a fitted Heatmap's Values) — the simulator behind
// inhomogeneous null models.
func SampleFromIntensity(rng *rand.Rand, spec PixelGrid, values []float64, n int) (*Dataset, error) {
	return dataset.SampleFromIntensity(rng, spec, values, n)
}

// ReadCSV reads a dataset (header x,y[,t][,value]).
func ReadCSV(r io.Reader) (*Dataset, error) { return dataset.ReadCSV(r) }

// WriteCSV writes d in the same CSV layout.
func WriteCSV(w io.Writer, d *Dataset) error { return dataset.WriteCSV(w, d) }

// ReadCSVFile reads a dataset from a file.
func ReadCSVFile(path string) (*Dataset, error) { return dataset.ReadCSVFile(path) }

// WriteCSVFile writes a dataset to a file.
func WriteCSVFile(path string, d *Dataset) error { return dataset.WriteCSVFile(path, d) }
