package geostat

import (
	"math/rand"

	"geostat/internal/cluster"
	"geostat/internal/getisord"
	"geostat/internal/idw"
	"geostat/internal/kriging"
	"geostat/internal/moran"
	"geostat/internal/stkdv"
	"geostat/internal/weights"
)

// ---- STKDV (spatiotemporal KDV, §2.2) ----

// STKDVOptions configures spatiotemporal KDV.
type STKDVOptions = stkdv.Options

// STKDVCube is an STKDV result: one density grid per time slice.
type STKDVCube = stkdv.Cube

// STKDV computes spatiotemporal kernel density with the shared (SWS-style)
// algorithm: each event's spatial footprint is computed once and spread
// across its temporal support.
func STKDV(d *Dataset, opt STKDVOptions) (*STKDVCube, error) { return stkdv.Shared(d, opt) }

// STKDVNaive computes spatiotemporal kernel density with the O(XYTn)
// baseline (works for any kernels).
func STKDVNaive(d *Dataset, opt STKDVOptions) (*STKDVCube, error) { return stkdv.Naive(d, opt) }

// ---- IDW (Table 1) ----

// IDWOptions configures inverse distance weighting.
type IDWOptions = idw.Options

// IDW interpolates with every sample per pixel — the O(XYn) baseline.
func IDW(d *Dataset, opt IDWOptions) (*Heatmap, error) { return idw.Naive(d, opt) }

// IDWKNN interpolates from the k nearest samples per pixel.
func IDWKNN(d *Dataset, opt IDWOptions, k int) (*Heatmap, error) { return idw.KNN(d, opt, k) }

// IDWRadius interpolates from the samples within a cutoff radius.
func IDWRadius(d *Dataset, opt IDWOptions, radius float64) (*Heatmap, error) {
	return idw.Radius(d, opt, radius)
}

// IDWCVResult is a leave-one-out cross-validation of IDW.
type IDWCVResult = idw.CVResult

// IDWLOOCV cross-validates kNN-IDW (tune power and k without ground
// truth).
func IDWLOOCV(d *Dataset, power float64, k int) (*IDWCVResult, error) {
	return idw.LOOCV(d, power, k)
}

// ---- Kriging (Table 1) ----

// VariogramModel selects the kriging variogram model.
type VariogramModel = kriging.Model

// Variogram models.
const (
	SphericalModel   = kriging.Spherical
	ExponentialModel = kriging.Exponential
	GaussianVModel   = kriging.GaussianModel
)

// Variogram is a fitted variogram γ(h).
type Variogram = kriging.Variogram

// VariogramBin is one lag bin of an empirical semivariogram.
type VariogramBin = kriging.EmpiricalBin

// KrigingOptions configures ordinary kriging.
type KrigingOptions = kriging.Options

// EmpiricalVariogram computes the binned empirical semivariogram of d's
// values up to maxLag.
func EmpiricalVariogram(d *Dataset, maxLag float64, bins int) ([]VariogramBin, error) {
	return kriging.Empirical(d, maxLag, bins)
}

// FitVariogram fits a model to empirical bins by weighted least squares.
func FitVariogram(bins []VariogramBin, model VariogramModel) (Variogram, error) {
	return kriging.Fit(bins, model)
}

// Krige performs ordinary kriging of d's values onto opt.Grid.
func Krige(d *Dataset, opt KrigingOptions) (*Heatmap, error) { return kriging.Interpolate(d, opt) }

// KrigingCVResult is a leave-one-out cross-validation of kriging.
type KrigingCVResult = kriging.CVResult

// KrigeLOOCV cross-validates ordinary kriging (compare variogram models or
// neighbourhood sizes without ground truth).
func KrigeLOOCV(d *Dataset, v Variogram, neighbors int) (*KrigingCVResult, error) {
	return kriging.LOOCV(d, v, neighbors)
}

// KrigeLOOCVWorkers is KrigeLOOCV with an explicit parallelism degree
// (0/1 serial, <0 GOMAXPROCS); residuals are bit-identical for every
// worker count.
func KrigeLOOCVWorkers(d *Dataset, v Variogram, neighbors, workers int) (*KrigingCVResult, error) {
	return kriging.LOOCVWorkers(d, v, neighbors, workers)
}

// ---- Spatial weights + autocorrelation (Table 1) ----

// SpatialWeights is a sparse spatial weight matrix.
type SpatialWeights = weights.Matrix

// KNNWeights returns binary k-nearest-neighbour weights.
func KNNWeights(pts []Point, k int) (*SpatialWeights, error) { return weights.KNN(pts, k) }

// KNNWeightsWorkers is KNNWeights with an explicit parallelism degree
// (0/1 serial, <0 GOMAXPROCS); the matrix is bit-identical for every
// worker count.
func KNNWeightsWorkers(pts []Point, k, workers int) (*SpatialWeights, error) {
	return weights.KNNWorkers(pts, k, workers)
}

// DistanceBandWeights returns binary weights for 0 < dist <= radius.
func DistanceBandWeights(pts []Point, radius float64) (*SpatialWeights, error) {
	return weights.DistanceBand(pts, radius)
}

// DistanceBandWeightsWorkers is DistanceBandWeights with an explicit
// parallelism degree (0/1 serial, <0 GOMAXPROCS); the matrix is
// bit-identical for every worker count.
func DistanceBandWeightsWorkers(pts []Point, radius float64, workers int) (*SpatialWeights, error) {
	return weights.DistanceBandWorkers(pts, radius, workers)
}

// MoranOptions configures a Moran/Geary permutation test: Perms
// permutations from the deterministic Seed, fanned out across Workers.
type MoranOptions = moran.Options

// GetisOrdOptions configures the General G permutation test.
type GetisOrdOptions = getisord.Options

// MoranResult is a global Moran's I with its permutation test.
type MoranResult = moran.Result

// LocalMoranResult is one site's LISA statistic.
type LocalMoranResult = moran.LocalResult

// MoranI computes global Moran's I with an optional permutation test.
func MoranI(values []float64, w *SpatialWeights, perms int, rng *rand.Rand) (*MoranResult, error) {
	return moran.Global(values, w, perms, rng)
}

// MoranIOpt computes global Moran's I with an explicit permutation-test
// configuration (deterministic seed, worker-count-invariant results).
func MoranIOpt(values []float64, w *SpatialWeights, opt MoranOptions) (*MoranResult, error) {
	return moran.GlobalOpt(values, w, opt)
}

// LocalMoran computes local Moran's I (LISA) for every site.
func LocalMoran(values []float64, w *SpatialWeights, perms int, rng *rand.Rand) ([]LocalMoranResult, error) {
	return moran.Local(values, w, perms, rng)
}

// LocalMoranOpt computes local Moran's I with an explicit permutation-test
// configuration (deterministic seed, worker-count-invariant z-scores).
func LocalMoranOpt(values []float64, w *SpatialWeights, opt MoranOptions) ([]LocalMoranResult, error) {
	return moran.LocalOpt(values, w, opt)
}

// GearyResult is a global Geary's C with its permutation test.
type GearyResult = moran.GearyResult

// GearyC computes Geary's contiguity ratio (E[C]=1; C<1 positive
// autocorrelation, C>1 negative), the local-difference complement to
// Moran's I.
func GearyC(values []float64, w *SpatialWeights, perms int, rng *rand.Rand) (*GearyResult, error) {
	return moran.Geary(values, w, perms, rng)
}

// GearyCOpt computes Geary's C with an explicit permutation-test
// configuration (deterministic seed, worker-count-invariant results).
func GearyCOpt(values []float64, w *SpatialWeights, opt MoranOptions) (*GearyResult, error) {
	return moran.GearyOpt(values, w, opt)
}

// MoranQuadrant is a Moran-scatterplot quadrant (HH/LL/HL/LH).
type MoranQuadrant = moran.Quadrant

// Moran scatterplot quadrants.
const (
	QuadrantHH = moran.HH
	QuadrantLL = moran.LL
	QuadrantHL = moran.HL
	QuadrantLH = moran.LH
)

// MoranQuadrants classifies every site on the Moran scatterplot — combined
// with LocalMoran z-scores this is the LISA cluster map.
func MoranQuadrants(values []float64, w *SpatialWeights) ([]MoranQuadrant, error) {
	return moran.Quadrants(values, w)
}

// CorrelogramPoint is Moran's I at one distance-band radius.
type CorrelogramPoint = moran.CorrelogramPoint

// MoranCorrelogram computes Moran's I across increasing distance bands —
// how autocorrelation decays with scale.
func MoranCorrelogram(pts []Point, values []float64, radii []float64, perms int, rng *rand.Rand) ([]CorrelogramPoint, error) {
	return moran.Correlogram(pts, values, radii, perms, rng)
}

// GeneralGResult is a global Getis-Ord General G with its permutation test.
type GeneralGResult = getisord.GeneralGResult

// GeneralG computes Getis-Ord General G with an optional permutation test
// whose shuffles are derived deterministically from seed.
func GeneralG(values []float64, w *SpatialWeights, perms int, seed int64) (*GeneralGResult, error) {
	return getisord.GeneralG(values, w, perms, seed)
}

// GeneralGOpt computes General G with an explicit permutation-test
// configuration (deterministic seed, worker-count-invariant results).
func GeneralGOpt(values []float64, w *SpatialWeights, opt GetisOrdOptions) (*GeneralGResult, error) {
	return getisord.GeneralGOpt(values, w, opt)
}

// LocalGStar computes per-site Gi* hot/cold-spot z-scores.
func LocalGStar(values []float64, w *SpatialWeights) ([]float64, error) {
	return getisord.LocalGStar(values, w)
}

// ---- Clustering ----

// DBSCANNoise is the label of points in no DBSCAN cluster.
const DBSCANNoise = cluster.Noise

// DBSCAN clusters pts with grid-index-accelerated DBSCAN.
func DBSCAN(pts []Point, eps float64, minPts int) ([]int, error) {
	return cluster.DBSCAN(pts, eps, minPts)
}

// DBSCANNaive clusters pts with the O(n²) baseline.
func DBSCANNaive(pts []Point, eps float64, minPts int) ([]int, error) {
	return cluster.DBSCANNaive(pts, eps, minPts)
}

// NumClusters returns the number of distinct non-noise DBSCAN labels.
func NumClusters(labels []int) int { return cluster.NumClusters(labels) }

// KMeansResult holds a k-means clustering.
type KMeansResult = cluster.KMeansResult

// KMeans runs Lloyd's algorithm with k-means++ seeding.
func KMeans(pts []Point, k, maxIters int, rng *rand.Rand) (*KMeansResult, error) {
	return cluster.KMeans(pts, k, maxIters, rng)
}
