// Command geolint is the repository's multichecker: it typechecks the
// module with the standard library only and applies geolint's custom
// determinism/concurrency analyzers plus the curated general passes (see
// internal/lint). It exits 1 if any diagnostic survives //lint:allow
// filtering, making it suitable for `make lint` and CI.
//
// Usage:
//
//	geolint [-only name[,name]] [-list] [packages]
//
// The package arguments are accepted for interface parity with go vet
// ("./..." is typical) but the whole module is always checked: the
// invariants are module-wide, and partial runs invite partial truths.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"geostat/internal/lint"
	"geostat/internal/lint/analysis"
	"geostat/internal/lint/load"
)

func main() {
	var (
		only    = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		dirFlag = flag.String("C", ".", "directory inside the module to lint")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := lint.Lookup(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "geolint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := load.FindModuleRoot(*dirFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "geolint: %v\n", err)
		os.Exit(2)
	}
	loader, err := load.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "geolint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Module()
	if err != nil {
		fmt.Fprintf(os.Stderr, "geolint: %v\n", err)
		os.Exit(2)
	}

	exit := 0
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			for _, e := range pkg.Errors {
				fmt.Fprintf(os.Stderr, "geolint: %s: type error: %v\n", pkg.Path, e)
			}
			exit = 2
			continue
		}
		diags, err := lint.Run(loader, pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "geolint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			printDiag(loader, root, d)
			if exit == 0 {
				exit = 1
			}
		}
	}
	os.Exit(exit)
}

func printDiag(loader *load.Loader, root string, d analysis.Diagnostic) {
	pos := loader.Fset.Position(d.Pos)
	name := pos.Filename
	if rel, ok := strings.CutPrefix(name, root+string(os.PathSeparator)); ok {
		name = rel
	}
	fmt.Printf("%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
}
