// Command geolint is the repository's multichecker: it typechecks the
// module with the standard library only and applies geolint's custom
// determinism/concurrency analyzers plus the curated general passes (see
// internal/lint). Analyzers run over every package in import dependency
// order with cross-package fact propagation, so a single invocation sees
// the whole module's call graph.
//
// Usage:
//
//	geolint [-only name[,name]] [-list] [-json] [-sarif] [-o file] [packages]
//	geolint -debt [-debt-baseline lint_debt.json] [-o file]
//
// -debt inventories every //lint:allow directive into a JSON debt report
// instead of running analyzers. With -debt-baseline the report is diffed
// against the committed budget: the run fails (exit 1) when suppressions
// for any analyzer grew beyond the budget or when a directive carries no
// reason, so debt only grows through an explicit baseline bump.
//
// The package arguments are accepted for interface parity with go vet
// ("./..." is typical) but the whole module is always checked: the
// invariants are module-wide, facts flow across packages, and partial
// runs invite partial truths.
//
// Exit status: 0 when no gating findings survive //lint:allow filtering
// (advisory findings — analyzers marked report-only — never fail the
// run), 1 when at least one gating finding survives, 2 on load or type
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"geostat/internal/lint"
	"geostat/internal/lint/load"
)

func main() {
	var (
		only      = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list      = flag.Bool("list", false, "list analyzers and exit")
		dirFlag   = flag.String("C", ".", "directory inside the module to lint")
		jsonFlag  = flag.Bool("json", false, "emit findings as a JSON array")
		sarifFlag = flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 (for code scanning upload)")
		outFlag   = flag.String("o", "", "write the -json/-sarif/-debt report to file (text findings still print to stdout)")
		debtFlag  = flag.Bool("debt", false, "inventory //lint:allow suppressions as JSON instead of running analyzers")
		debtBase  = flag.String("debt-baseline", "", "with -debt: diff against this committed budget and fail on growth")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			gate := ""
			if a.Advisory {
				gate = " (advisory)"
			}
			fmt.Printf("%-16s %s%s\n", a.Name, a.Doc, gate)
		}
		return
	}
	if *jsonFlag && *sarifFlag {
		fatalf("choose one of -json and -sarif")
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := lint.Lookup(strings.TrimSpace(name))
			if !ok {
				fatalf("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := load.FindModuleRoot(*dirFlag)
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := load.NewLoader(root)
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := loader.Module()
	if err != nil {
		fatalf("%v", err)
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "geolint: %s: type error: %v\n", pkg.Path, e)
		}
		if len(pkg.Errors) > 0 {
			os.Exit(2)
		}
	}

	if *debtFlag {
		report := lint.CollectDebt(loader, pkgs)
		data, jerr := report.JSON()
		if jerr != nil {
			fatalf("%v", jerr)
		}
		if *outFlag != "" {
			if werr := os.WriteFile(*outFlag, data, 0o644); werr != nil {
				fatalf("%v", werr)
			}
		} else {
			os.Stdout.Write(data)
		}
		if *debtBase != "" {
			raw, rerr := os.ReadFile(*debtBase)
			if rerr != nil {
				fatalf("%v", rerr)
			}
			baseline, perr := lint.ParseDebt(raw)
			if perr != nil {
				fatalf("%v", perr)
			}
			table, ok := lint.DiffDebt(baseline, report)
			fmt.Fprint(os.Stderr, table)
			if !ok {
				os.Exit(1)
			}
		}
		return
	}

	findings, err := lint.RunPackages(loader, pkgs, analyzers)
	if err != nil {
		fatalf("%v", err)
	}

	var report []byte
	switch {
	case *sarifFlag:
		report, err = lint.SARIF(analyzers, findings)
	case *jsonFlag:
		report, err = lint.JSONReport(findings)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if report != nil {
		report = append(report, '\n')
	}
	// With -o the structured report goes to the file and the human-readable
	// text still goes to stdout: one type-checked load serves both the CI
	// log and the code-scanning upload. Without -o the structured report
	// (or, by default, the text) goes to stdout.
	if *outFlag != "" && report != nil {
		if werr := os.WriteFile(*outFlag, report, 0o644); werr != nil {
			fatalf("%v", werr)
		}
		report = nil
	}
	if report != nil {
		os.Stdout.Write(report)
	} else {
		var b strings.Builder
		for _, f := range findings {
			note := ""
			if f.Advisory {
				note = " (advisory)"
			}
			fmt.Fprintf(&b, "%s:%d:%d: [%s]%s %s\n", f.File, f.Line, f.Col, f.Analyzer, note, f.Message)
		}
		os.Stdout.WriteString(b.String())
	}
	os.Exit(lint.ExitCode(findings))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "geolint: "+format+"\n", args...)
	os.Exit(2)
}

