package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"geostat"
	"geostat/internal/serve"
	"geostat/internal/shard/shardtest"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./cmd/geoshard -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// elapsedRE scrubs the wall-clock durations in the stderr summary — the
// only nondeterministic token in the CLI's output.
var elapsedRE = regexp.MustCompile(`\d+(\.\d+)?(ns|µs|ms|s)\b`)

func scrubElapsed(s string) string { return elapsedRE.ReplaceAllString(s, "<elapsed>") }

func writeEvents(t *testing.T, n int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	d := geostat.GaussianClusters(rng, n, geostat.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		[]geostat.GaussianCluster{{Center: geostat.Point{X: 40, Y: 40}, Sigma: 6, Weight: 1}}, 0.2)
	path := filepath.Join(t.TempDir(), "events.csv")
	if err := geostat.WriteCSVFile(path, d); err != nil {
		t.Fatal(err)
	}
	return path
}

func bootWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		urls[i] = shardtest.NewWorker(t, serve.Config{Workers: 2}).URL()
	}
	return urls
}

func testOptions(t *testing.T, workers []string, in string) options {
	t.Helper()
	return options{
		workers:     workers,
		in:          in,
		name:        "golden",
		out:         filepath.Join(t.TempDir(), "out.json"),
		replication: 2,
		retries:     2,
		backoff:     time.Millisecond,
		timeout:     30 * time.Second,
		kernelArg:   "quartic",
		bandwidth:   8,
		width:       24,
		height:      18,
		bbox:        "0,0,100,100",
		tile:        "3x2",
		smax:        25,
		steps:       10,
		sims:        9,
		seed:        1,
		bands:       3,
	}
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func sha256File(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TestGoldenKDV locks down the merged heatmap JSON (by digest — the
// payload is 432 floats) and the stderr summary for a fixed dataset and
// seed, across worker counts: one golden pair serves every fleet size,
// which is the sharded-determinism claim at the CLI level.
func TestGoldenKDV(t *testing.T) {
	in := writeEvents(t, 400)
	for _, nw := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", nw), func(t *testing.T) {
			opt := testOptions(t, bootWorkers(t, nw), in)
			opt.tool = "kdv"
			var errb strings.Builder
			if err := run(opt, &errb); err != nil {
				t.Fatal(err)
			}
			stderr := scrubElapsed(errb.String())
			// The worker count is the one legitimate per-subtest difference.
			stderr = strings.ReplaceAll(stderr,
				fmt.Sprintf("over %d workers", nw), "over <n> workers")
			compareGolden(t, filepath.Join("testdata", "golden", "kdv.stderr"), stderr)
			compareGolden(t, filepath.Join("testdata", "golden", "kdv.json.sha256"), sha256File(t, opt.out)+"\n")
		})
	}
}

// TestGoldenKFunction locks down the merged K-function plot JSON in full
// (10 bands), including the Monte-Carlo envelopes.
func TestGoldenKFunction(t *testing.T) {
	in := writeEvents(t, 250)
	for _, nw := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", nw), func(t *testing.T) {
			opt := testOptions(t, bootWorkers(t, nw), in)
			opt.tool = "kfunction"
			var errb strings.Builder
			if err := run(opt, &errb); err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(opt.out)
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", "golden", "kfunction.json"), string(b))
		})
	}
}

// TestGoldenKDVWithFaults proves the golden digest survives injected
// faults: retries and failovers must not change a single output byte.
func TestGoldenKDVWithFaults(t *testing.T) {
	in := writeEvents(t, 400)
	w0 := shardtest.NewWorker(t, serve.Config{Workers: 2})
	w1 := shardtest.NewWorker(t, serve.Config{Workers: 2})
	w0.Script(shardtest.Rule{Tool: "kdv", Times: 1, Status: 503})
	w1.Script(shardtest.Rule{Tool: "kdv", Times: 1, Corrupt: true})

	opt := testOptions(t, []string{w0.URL(), w1.URL()}, in)
	opt.tool = "kdv"
	var errb strings.Builder
	if err := run(opt, &errb); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "golden", "kdv.json.sha256"), sha256File(t, opt.out)+"\n")
	if w0.Hits("status")+w1.Hits("corrupt") == 0 {
		t.Fatal("no fault actually fired")
	}
}

func TestRunErrors(t *testing.T) {
	in := writeEvents(t, 50)
	workers := bootWorkers(t, 1)

	base := testOptions(t, workers, in)
	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"missing input", func(o *options) { o.in = filepath.Join(t.TempDir(), "nope.csv") }},
		{"bad tool", func(o *options) { o.tool = "moran" }},
		{"bad tile", func(o *options) { o.tool = "kdv"; o.tile = "axb" }},
		{"bad bbox", func(o *options) { o.tool = "kdv"; o.bbox = "garbage" }},
		{"gaussian kernel", func(o *options) { o.tool = "kdv"; o.kernelArg = "gaussian" }},
		{"bad kernel", func(o *options) { o.tool = "kdv"; o.kernelArg = "bogus" }},
		{"zero steps", func(o *options) { o.tool = "kfunction"; o.steps = 0 }},
		{"no workers", func(o *options) { o.workers = nil }},
	}
	for _, tc := range cases {
		opt := base
		tc.mut(&opt)
		if err := run(opt, &strings.Builder{}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" http://a:1, ,http://b:2,")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("splitList: %v", got)
	}
	if splitList("") != nil {
		t.Fatal("empty list should be nil")
	}
}
