// Command geoshard fans one KDV or K-function computation out over a
// fleet of geostatd workers and merges the tile results into output
// bit-identical to a single-node run — the scale-out path of ROADMAP
// item 1.
//
// Usage:
//
//	geoshard -workers http://a:8090,http://b:8090 -in events.csv \
//	    -tool kdv -kernel quartic -bandwidth 6 -width 512 -height 512 \
//	    -tile 4x4 [-normalize] [-out heatmap.json]
//
//	geoshard -workers http://a:8090,http://b:8090 -in events.csv \
//	    -tool kfunction -smax 25 -steps 10 -sims 99 -seed 1 -bands 2
//
// The merged result is written as JSON (stdout by default) in exactly the
// shape a single geostatd would return for the equivalent request; a run
// summary goes to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"geostat"
	"geostat/internal/kernel"
	"geostat/internal/shard"
)

type options struct {
	workers     []string
	in          string
	name        string
	tool        string
	out         string
	replication int
	retries     int
	backoff     time.Duration
	timeout     time.Duration
	concurrency int

	// kdv
	kernelArg string
	bandwidth float64
	width     int
	height    int
	bbox      string
	tile      string
	normalize bool

	// kfunction
	smax  float64
	steps int
	sims  int
	seed  int64
	bands int
}

func main() {
	var (
		opt        options
		workersArg = flag.String("workers", "", "comma-separated worker base URLs (required)")
	)
	flag.StringVar(&opt.in, "in", "", "input CSV (header x,y[,t][,value])")
	flag.StringVar(&opt.name, "name", "events", "logical dataset name (letters, digits, '-', '_', '.')")
	flag.StringVar(&opt.tool, "tool", "kdv", "kdv|kfunction")
	flag.StringVar(&opt.out, "out", "", "output JSON path (default stdout)")
	flag.IntVar(&opt.replication, "replication", 2, "replicas per tile dataset")
	flag.IntVar(&opt.retries, "retries", 2, "extra attempts per tile beyond the first")
	flag.DurationVar(&opt.backoff, "backoff", 50*time.Millisecond, "base retry delay (doubles per attempt)")
	flag.DurationVar(&opt.timeout, "timeout", 30*time.Second, "per-attempt timeout")
	flag.IntVar(&opt.concurrency, "concurrency", 0, "max in-flight tiles (0 = 2 per worker)")
	flag.StringVar(&opt.kernelArg, "kernel", "quartic", "finite-support kernel: uniform|triangular|epanechnikov|quartic|triweight|cosine")
	flag.Float64Var(&opt.bandwidth, "bandwidth", 0, "kernel bandwidth (0 = 5% of the longer bbox side)")
	flag.IntVar(&opt.width, "width", 512, "raster width in pixels")
	flag.IntVar(&opt.height, "height", 512, "raster height in pixels")
	flag.StringVar(&opt.bbox, "bbox", "", "minx,miny,maxx,maxy (default: data bounds)")
	flag.StringVar(&opt.tile, "tile", "2x2", "tile decomposition COLSxROWS")
	flag.BoolVar(&opt.normalize, "normalize", false, "scale the merged raster to a density")
	flag.Float64Var(&opt.smax, "smax", 0, "largest K-function distance band (0 = quarter bbox diagonal)")
	flag.IntVar(&opt.steps, "steps", 10, "number of distance bands")
	flag.IntVar(&opt.sims, "sims", 19, "Monte-Carlo envelope simulations")
	flag.Int64Var(&opt.seed, "seed", 1, "envelope simulation seed")
	flag.IntVar(&opt.bands, "bands", 1, "distance bands per worker request")
	flag.Parse()

	opt.workers = splitList(*workersArg)
	if len(opt.workers) == 0 || opt.in == "" {
		fmt.Fprintln(os.Stderr, "geoshard: -workers and -in are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(opt, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "geoshard: %v\n", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}

func run(opt options, errw io.Writer) error {
	d, err := geostat.ReadCSVFile(opt.in)
	if err != nil {
		return err
	}
	if d.N() == 0 {
		return fmt.Errorf("no events in %s", opt.in)
	}
	c, err := shard.New(shard.Config{
		Workers:     opt.workers,
		Replication: opt.replication,
		Retries:     opt.retries,
		Backoff:     opt.backoff,
		Timeout:     opt.timeout,
		Concurrency: opt.concurrency,
	})
	if err != nil {
		return err
	}

	var (
		payload any
		units   string
		n       int
	)
	start := time.Now()
	switch opt.tool {
	case "kdv":
		payload, n, err = runKDV(c, d, opt)
		units = "tiles"
	case "kfunction":
		payload, n, err = runKFunc(c, d, opt)
		units = "bands"
	default:
		return fmt.Errorf("unknown tool %q (kdv|kfunction)", opt.tool)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	out := os.Stdout
	if opt.out != "" {
		f, ferr := os.Create(opt.out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	if err := enc.Encode(payload); err != nil {
		return err
	}
	fmt.Fprintf(errw, "%d events, tool %s: %d %s over %d workers in %v\n",
		d.N(), opt.tool, n, units, len(opt.workers), elapsed.Round(time.Millisecond))
	return nil
}

// heatmapOut mirrors geostatd's /v1/kdv response field-for-field.
type heatmapOut struct {
	Dataset string    `json:"dataset"`
	Method  string    `json:"method"`
	Width   int       `json:"width"`
	Height  int       `json:"height"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Sum     float64   `json:"sum"`
	Values  []float64 `json:"values"`
}

func runKDV(c *shard.Coordinator, d *geostat.Dataset, opt options) (any, int, error) {
	kt, err := geostat.ParseKernel(opt.kernelArg)
	if err != nil {
		return nil, 0, err
	}
	box := d.Bounds().Pad(1e-9)
	if opt.bbox != "" {
		var b geostat.BBox
		if _, perr := fmt.Sscanf(opt.bbox, "%f,%f,%f,%f", &b.MinX, &b.MinY, &b.MaxX, &b.MaxY); perr != nil {
			return nil, 0, fmt.Errorf("bbox %q: want minx,miny,maxx,maxy", opt.bbox)
		}
		box = b
	}
	bw := opt.bandwidth
	if bw == 0 {
		side := box.Width()
		if box.Height() > side {
			side = box.Height()
		}
		bw = side * 0.05
	}
	k, err := kernel.New(kt, bw)
	if err != nil {
		return nil, 0, err
	}
	var tx, ty int
	if _, perr := fmt.Sscanf(opt.tile, "%dx%d", &tx, &ty); perr != nil {
		return nil, 0, fmt.Errorf("tile %q: want COLSxROWS, e.g. 4x4", opt.tile)
	}
	req := shard.KDVRequest{
		Kernel: k,
		Grid:   geostat.NewPixelGrid(box, opt.width, opt.height),
		TilesX: tx, TilesY: ty,
		Normalize: opt.normalize,
	}
	g, err := c.KDV(context.Background(), d, opt.name, req)
	if err != nil {
		return nil, 0, err
	}
	lo, hi := g.MinMax()
	return &heatmapOut{
		Dataset: opt.name,
		Method:  "naive",
		Width:   opt.width,
		Height:  opt.height,
		Min:     lo,
		Max:     hi,
		Sum:     g.Sum(),
		Values:  g.Values,
	}, tx * ty, nil
}

// kfuncOut mirrors geostatd's /v1/kfunction response field-for-field.
type kfuncOut struct {
	Dataset string    `json:"dataset"`
	S       []float64 `json:"s"`
	K       []float64 `json:"k"`
	Lo      []float64 `json:"lo"`
	Hi      []float64 `json:"hi"`
	Sims    int       `json:"sims"`
	Regimes []string  `json:"regimes"`
}

func runKFunc(c *shard.Coordinator, d *geostat.Dataset, opt options) (any, int, error) {
	smax := opt.smax
	if smax == 0 {
		b := d.Bounds()
		smax = math.Hypot(b.Width(), b.Height()) / 4
	}
	if opt.steps < 1 {
		return nil, 0, fmt.Errorf("steps must be positive")
	}
	// Same band derivation as geostatd's smax/steps default, so the merged
	// plot matches a single-node request for the same parameters.
	thresholds := make([]float64, opt.steps)
	for i := range thresholds {
		thresholds[i] = smax * float64(i+1) / float64(opt.steps)
	}
	req := shard.KFuncRequest{
		Thresholds: thresholds,
		Sims:       opt.sims,
		Seed:       opt.seed,
		Bands:      opt.bands,
	}
	res, err := c.KFunction(context.Background(), d, opt.name, req)
	if err != nil {
		return nil, 0, err
	}
	return &kfuncOut{
		Dataset: opt.name,
		S:       res.S,
		K:       res.K,
		Lo:      res.Lo,
		Hi:      res.Hi,
		Sims:    res.Sims,
		Regimes: res.Regimes,
	}, len(thresholds), nil
}
