package main

import (
	"path/filepath"
	"testing"

	"geostat"
)

func TestRunAllKinds(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		kind      string
		wantTimes bool
		wantVals  bool
	}{
		{"csr", false, false},
		{"clusters", false, false},
		{"matern", false, false},
		{"dispersed", false, false},
		{"outbreak", true, false},
		{"field", false, true},
	}
	for _, c := range cases {
		out := filepath.Join(dir, c.kind+".csv")
		if err := run(c.kind, out, 300, 2, 2, 1, 100, 100, 5, 0.2, 2, 50); err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		d, err := geostat.ReadCSVFile(out)
		if err != nil {
			t.Fatalf("%s readback: %v", c.kind, err)
		}
		if d.N() == 0 {
			t.Errorf("%s: empty dataset", c.kind)
		}
		if d.HasTimes() != c.wantTimes || d.HasValues() != c.wantVals {
			t.Errorf("%s: times=%v values=%v", c.kind, d.HasTimes(), d.HasValues())
		}
	}
}

func TestRunUnknownKind(t *testing.T) {
	if err := run("bogus", filepath.Join(t.TempDir(), "x.csv"), 10, 1, 1, 1, 10, 10, 1, 0, 1, 10); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	for _, p := range []string{a, b} {
		if err := run("clusters", p, 100, 2, 2, 7, 100, 100, 5, 0.2, 2, 50); err != nil {
			t.Fatal(err)
		}
	}
	da, _ := geostat.ReadCSVFile(a)
	db, _ := geostat.ReadCSVFile(b)
	for i := range da.Points() {
		if da.Points()[i] != db.Points()[i] {
			t.Fatal("same seed produced different data")
		}
	}
}
