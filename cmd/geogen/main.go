// Command geogen writes synthetic location datasets in the library's CSV
// layout — the deterministic stand-ins for the access-gated real datasets
// the paper demos on (see DESIGN.md). Useful to feed cmd/kdv and cmd/kfunc
// without touching the Go API.
//
// Usage:
//
//	geogen -kind csr       -n 10000 -out events.csv
//	geogen -kind clusters  -n 50000 -centers 3 -sigma 5 -noise 0.3 -out crime.csv
//	geogen -kind matern    -out clustered.csv
//	geogen -kind dispersed -n 2000 -mindist 1.5 -out regular.csv
//	geogen -kind outbreak  -n 30000 -waves 2 -out covid.csv     # adds a t column
//	geogen -kind field     -n 500 -out sensors.csv              # adds a value column
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"geostat"
)

func main() {
	var (
		kind    = flag.String("kind", "csr", "csr|clusters|matern|dispersed|outbreak|field")
		n       = flag.Int("n", 10000, "number of events (ignored by matern)")
		out     = flag.String("out", "events.csv", "output CSV path")
		seed    = flag.Int64("seed", 1, "generator seed")
		w       = flag.Float64("w", 100, "region width")
		h       = flag.Float64("h", 100, "region height")
		centers = flag.Int("centers", 2, "clusters: number of hotspots")
		sigma   = flag.Float64("sigma", 5, "clusters/outbreak: hotspot spread")
		noise   = flag.Float64("noise", 0.2, "clusters/outbreak: background fraction")
		minDist = flag.Float64("mindist", 2, "dispersed: inhibition distance")
		waves   = flag.Int("waves", 2, "outbreak: number of waves")
		tEnd    = flag.Float64("tend", 100, "outbreak: time range end")
	)
	flag.Parse()
	if err := run(*kind, *out, *n, *centers, *waves, *seed, *w, *h, *sigma, *noise, *minDist, *tEnd); err != nil {
		fmt.Fprintf(os.Stderr, "geogen: %v\n", err)
		os.Exit(1)
	}
}

func run(kind, out string, n, centers, waves int, seed int64, w, h, sigma, noise, minDist, tEnd float64) error {
	rng := geostat.NewRand(seed)
	box := geostat.BBox{MinX: 0, MinY: 0, MaxX: w, MaxY: h}
	var d *geostat.Dataset
	switch kind {
	case "csr":
		d = geostat.UniformCSR(rng, n, box)
	case "clusters":
		var cl []geostat.GaussianCluster
		for i := 0; i < centers; i++ {
			cl = append(cl, geostat.GaussianCluster{
				Center: geostat.Point{
					X: box.MinX + (0.2+0.6*rng.Float64())*w,
					Y: box.MinY + (0.2+0.6*rng.Float64())*h,
				},
				Sigma:  sigma,
				Weight: 1,
			})
		}
		d = geostat.GaussianClusters(rng, n, box, cl, noise)
	case "matern":
		d = geostat.MaternCluster(rng, box, 0.004, 25, 3*sigma/5)
	case "dispersed":
		d = geostat.Dispersed(rng, n, box, minDist)
	case "outbreak":
		var ws []geostat.OutbreakWave
		for i := 0; i < waves; i++ {
			ws = append(ws, geostat.OutbreakWave{
				Center: geostat.Point{
					X: box.MinX + (0.2+0.6*rng.Float64())*w,
					Y: box.MinY + (0.2+0.6*rng.Float64())*h,
				},
				Sigma:     sigma,
				TimeMean:  tEnd * (float64(i) + 0.5) / float64(waves),
				TimeSigma: tEnd / (4 * float64(waves)),
				Weight:    1,
			})
		}
		d = geostat.SpatioTemporalOutbreak(rng, n, box, 0, tEnd, ws, noise)
	case "field":
		d = geostat.UniformCSR(rng, n, box)
		cx, cy := box.MinX+0.3*w, box.MinY+0.6*h
		geostat.WithField(rng, d, func(p geostat.Point) float64 {
			dx, dy := p.X-cx, p.Y-cy
			return 20 + 50*math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma*9))
		}, 1)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if err := geostat.WriteCSVFile(out, d); err != nil {
		return err
	}
	cols := "x,y"
	if d.HasTimes() {
		cols += ",t"
	}
	if d.HasValues() {
		cols += ",value"
	}
	fmt.Printf("wrote %d events (%s) to %s\n", d.N(), cols, out)
	return nil
}
