// Command kdv renders a kernel density heatmap from a CSV of events — the
// end-to-end pipeline behind the paper's Figure 1/5 hotspot maps.
//
// Usage:
//
//	kdv -in events.csv -out heatmap.png -kernel quartic -bandwidth 6 \
//	    -width 512 -height 512 [-method auto] [-ascii]
//
// The input CSV needs an "x,y" header (extra t/value columns are ignored
// for the density itself).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"geostat"
)

func main() {
	var (
		in        = flag.String("in", "", "input CSV (header x,y[,t][,value])")
		out       = flag.String("out", "heatmap.png", "output PNG path")
		kernelArg = flag.String("kernel", "quartic", "kernel: uniform|triangular|epanechnikov|quartic|triweight|gaussian|cosine|exponential")
		bandwidth = flag.Float64("bandwidth", 0, "kernel bandwidth (0 = 5% of the longer bbox side)")
		width     = flag.Int("width", 512, "raster width in pixels")
		height    = flag.Int("height", 512, "raster height in pixels")
		method    = flag.String("method", "auto", "auto|naive|grid-cutoff|sweep-line|bound-approx|sampled")
		epsilon   = flag.Float64("epsilon", 0.05, "error parameter for approximate methods")
		workers   = flag.Int("workers", -1, "parallel workers (-1 = all cores)")
		ascii     = flag.Bool("ascii", false, "also print an ASCII rendering")
		gray      = flag.Bool("gray", false, "grayscale ramp instead of heat colors")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "kdv: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *out, *kernelArg, *method, *bandwidth, *epsilon, *width, *height, *workers, *ascii, *gray); err != nil {
		fmt.Fprintf(os.Stderr, "kdv: %v\n", err)
		os.Exit(1)
	}
}

func run(in, out, kernelArg, methodArg string, bandwidth, epsilon float64, width, height, workers int, ascii, gray bool) error {
	d, err := geostat.ReadCSVFile(in)
	if err != nil {
		return err
	}
	if d.N() == 0 {
		return fmt.Errorf("no events in %s", in)
	}
	box := d.Bounds().Pad(1e-9)
	if bandwidth == 0 {
		// Silverman's normal-reference rule; fall back to 5% of the longer
		// side for degenerate data.
		if b, serr := geostat.SilvermanBandwidth(d.Points()); serr == nil {
			bandwidth = b
		} else {
			side := box.Width()
			if box.Height() > side {
				side = box.Height()
			}
			bandwidth = side * 0.05
		}
		fmt.Printf("auto bandwidth: %.4g\n", bandwidth)
	}
	kt, err := geostat.ParseKernel(kernelArg)
	if err != nil {
		return err
	}
	k, err := geostat.NewKernel(kt, bandwidth)
	if err != nil {
		return err
	}
	m, err := parseMethod(methodArg)
	if err != nil {
		return err
	}
	opt := geostat.KDVOptions{
		Kernel:  k,
		Grid:    geostat.NewPixelGrid(box, width, height),
		Method:  m,
		Workers: workers,
		Epsilon: epsilon,
		Delta:   0.01,
		Seed:    1,
	}
	start := time.Now()
	hm, err := geostat.KDV(d.Points(), opt)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	ramp := geostat.HeatRamp
	if gray {
		ramp = geostat.GrayRamp
	}
	if err := hm.WritePNGFile(out, ramp); err != nil {
		return err
	}
	ix, iy, peak := hm.ArgMax()
	hot := opt.Grid.Center(ix, iy)
	fmt.Printf("%d events, %s kernel, bandwidth %.4g, %dx%d pixels, method %s: %v\n",
		d.N(), kt, bandwidth, width, height, m, elapsed.Round(time.Millisecond))
	fmt.Printf("hotspot at (%.4g, %.4g), peak density %.4g -> %s\n", hot.X, hot.Y, peak, out)
	if ascii {
		small := geostat.NewPixelGrid(box, 72, 28)
		sOpt := opt
		sOpt.Grid = small
		sm, err := geostat.KDV(d.Points(), sOpt)
		if err != nil {
			return err
		}
		fmt.Print(sm.ASCII())
	}
	return nil
}

func parseMethod(s string) (geostat.KDVMethod, error) {
	for _, m := range []geostat.KDVMethod{
		geostat.KDVAuto, geostat.KDVNaive, geostat.KDVGridCutoff,
		geostat.KDVSweepLine, geostat.KDVBoundApprox, geostat.KDVSampled,
	} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown method %q", s)
}
