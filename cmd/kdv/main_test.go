package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"geostat"
)

func writeEvents(t *testing.T, n int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	d := geostat.GaussianClusters(rng, n, geostat.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		[]geostat.GaussianCluster{{Center: geostat.Point{X: 40, Y: 40}, Sigma: 6, Weight: 1}}, 0.2)
	path := filepath.Join(t.TempDir(), "events.csv")
	if err := geostat.WriteCSVFile(path, d); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunProducesPNG(t *testing.T) {
	in := writeEvents(t, 500)
	out := filepath.Join(t.TempDir(), "hm.png")
	if err := run(in, out, "quartic", "auto", 0, 0.05, 64, 64, 1, true, false); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("empty PNG")
	}
}

func TestRunMethods(t *testing.T) {
	in := writeEvents(t, 200)
	dir := t.TempDir()
	for _, m := range []string{"naive", "grid-cutoff", "sweep-line", "bound-approx", "sampled"} {
		out := filepath.Join(dir, m+".png")
		if err := run(in, out, "quartic", m, 8, 0.1, 32, 32, 1, false, true); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
	if err := run(in, filepath.Join(dir, "x.png"), "quartic", "bogus", 8, 0.1, 16, 16, 1, false, false); err == nil {
		t.Error("bogus method accepted")
	}
	if err := run(in, filepath.Join(dir, "x.png"), "bogus", "auto", 8, 0.1, 16, 16, 1, false, false); err == nil {
		t.Error("bogus kernel accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.csv"), "o.png", "quartic", "auto", 0, 0.1, 16, 16, 1, false, false); err == nil {
		t.Error("missing input accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(empty, []byte("x,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, "o.png", "quartic", "auto", 0, 0.1, 16, 16, 1, false, false); err == nil {
		t.Error("empty dataset accepted")
	}
}
