package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./cmd/kdv -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// elapsedRE matches the wall-clock durations the CLI prints; they are the
// only nondeterministic part of the output and are scrubbed before the
// golden comparison.
var elapsedRE = regexp.MustCompile(`\d+(\.\d+)?(ns|µs|ms|s)\b`)

func scrubElapsed(s string) string { return elapsedRE.ReplaceAllString(s, "<elapsed>") }

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := fn()
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run failed: %v\noutput so far:\n%s", runErr, out)
	}
	return string(out)
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func sha256File(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TestGoldenOutput locks down the CLI's stdout and the rendered PNG for a
// fixed dataset and seed, and proves both are bit-stable across worker
// counts: any change to the output format or to the numeric pipeline
// shows up as a golden diff.
func TestGoldenOutput(t *testing.T) {
	in := writeEvents(t, 400)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "hm.png")
			stdout := captureStdout(t, func() error {
				return run(in, out, "quartic", "sweep-line", 8, 0.05, 48, 32, workers, true, false)
			})
			// The temp output path is the only other nondeterministic token.
			stdout = strings.ReplaceAll(stdout, out, "<out>")
			// One golden pair serves every worker count — that is the
			// determinism claim under test.
			compareGolden(t, filepath.Join("testdata", "golden", "kdv.stdout"), scrubElapsed(stdout))
			compareGolden(t, filepath.Join("testdata", "golden", "kdv.png.sha256"), sha256File(t, out)+"\n")
		})
	}
}
