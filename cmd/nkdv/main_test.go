package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geostat"
)

func writeInputs(t *testing.T) (networkPath, eventsPath string) {
	t.Helper()
	dir := t.TempDir()
	g := geostat.GridNetwork(5, 5, 20, geostat.Point{})
	networkPath = filepath.Join(dir, "net.csv")
	if err := geostat.WriteNetworkCSVFile(networkPath, g); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	d := geostat.UniformCSR(rng, 200, geostat.BBox{MinX: 0, MinY: 0, MaxX: 80, MaxY: 80})
	eventsPath = filepath.Join(dir, "events.csv")
	if err := geostat.WriteCSVFile(eventsPath, d); err != nil {
		t.Fatal(err)
	}
	return networkPath, eventsPath
}

func TestRunWithNetworkAndGeoJSON(t *testing.T) {
	net, events := writeInputs(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "density.csv")
	geo := filepath.Join(dir, "hot.geojson")
	if err := run(net, events, out, "quartic", geo, 30, 2, 1, false); err != nil {
		t.Fatal(err)
	}
	csvData, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csvData), "edge,start,end,cx,cy,density") {
		t.Errorf("unexpected CSV header: %.40s", csvData)
	}
	if _, err := os.Stat(geo); err != nil {
		t.Errorf("GeoJSON missing: %v", err)
	}
}

func TestRunEqualSplitAndDefaults(t *testing.T) {
	_, events := writeInputs(t)
	out := filepath.Join(t.TempDir(), "density.csv")
	// Demo network, auto lixel/bandwidth, equal-split path.
	if err := run("", events, out, "epanechnikov", "", 0, 0, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	net, events := writeInputs(t)
	out := filepath.Join(t.TempDir(), "o.csv")
	if err := run(filepath.Join(t.TempDir(), "missing.csv"), events, out, "quartic", "", 10, 1, 1, false); err == nil {
		t.Error("missing network accepted")
	}
	if err := run(net, filepath.Join(t.TempDir(), "missing.csv"), out, "quartic", "", 10, 1, 1, false); err == nil {
		t.Error("missing events accepted")
	}
	if err := run(net, events, out, "gaussian", "", 10, 1, 1, false); err == nil {
		t.Error("infinite-support kernel accepted")
	}
	if err := run(net, events, out, "bogus", "", 10, 1, 1, false); err == nil {
		t.Error("bogus kernel accepted")
	}
}
