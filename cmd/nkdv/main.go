// Command nkdv computes a network kernel density surface: events snapped
// onto a road network, density per lixel, results as CSV (and optionally
// GeoJSON of the hottest segments for a GIS).
//
// Usage:
//
//	nkdv -network roads.csv -events events.csv -bandwidth 150 -lixel 10 \
//	     -out density.csv [-kernel quartic] [-equalsplit] [-geojson hot.geojson]
//
// roads.csv is an edge list (header x1,y1,x2,y2[,length]); events.csv has
// an x,y header. With no -network, a demo Manhattan grid is used.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"geostat"
)

func main() {
	var (
		networkPath = flag.String("network", "", "edge-list CSV of the road network (empty: demo 10x10 grid)")
		eventsPath  = flag.String("events", "", "events CSV (header x,y)")
		out         = flag.String("out", "nkdv.csv", "output CSV: one row per lixel")
		kernelArg   = flag.String("kernel", "quartic", "finite-support kernel name")
		bandwidth   = flag.Float64("bandwidth", 0, "network bandwidth (0 = 4x lixel length x 10)")
		lixel       = flag.Float64("lixel", 0, "lixel length (0 = total length / 2000)")
		equalSplit  = flag.Bool("equalsplit", false, "use Okabe's equal-split kernel (mass-conserving)")
		geoOut      = flag.String("geojson", "", "also write a GeoJSON of lixels above half the peak")
		workers     = flag.Int("workers", -1, "parallel workers")
	)
	flag.Parse()
	if *eventsPath == "" {
		fmt.Fprintln(os.Stderr, "nkdv: -events is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*networkPath, *eventsPath, *out, *kernelArg, *geoOut, *bandwidth, *lixel, *workers, *equalSplit); err != nil {
		fmt.Fprintf(os.Stderr, "nkdv: %v\n", err)
		os.Exit(1)
	}
}

func run(networkPath, eventsPath, out, kernelArg, geoOut string, bandwidth, lixel float64, workers int, equalSplit bool) error {
	var g *geostat.RoadNetwork
	var err error
	if networkPath == "" {
		g = geostat.GridNetwork(10, 10, 100, geostat.Point{})
		fmt.Println("no -network given: using a demo 10x10 grid (spacing 100)")
	} else if g, err = geostat.ReadNetworkCSVFile(networkPath); err != nil {
		return err
	}
	if _, components := g.Components(); components > 1 {
		fmt.Printf("warning: the network has %d disconnected components; events snap to the nearest edge regardless\n", components)
	}
	d, err := geostat.ReadCSVFile(eventsPath)
	if err != nil {
		return err
	}
	if d.N() == 0 {
		return fmt.Errorf("no events in %s", eventsPath)
	}
	if lixel == 0 {
		lixel = g.TotalLength() / 2000
	}
	if bandwidth == 0 {
		bandwidth = lixel * 40
	}
	kt, err := geostat.ParseKernel(kernelArg)
	if err != nil {
		return err
	}
	k, err := geostat.NewKernel(kt, bandwidth)
	if err != nil {
		return err
	}

	// Snap planar events onto the network.
	events := make([]geostat.NetworkPosition, d.N())
	worstSnap := 0.0
	for i, p := range d.Points() {
		pos, dist := geostat.SnapToNetwork(g, p)
		events[i] = pos
		if dist > worstSnap {
			worstSnap = dist
		}
	}

	opt := geostat.NKDVOptions{Kernel: k, LixelLength: lixel, Workers: workers}
	start := time.Now()
	var surf *geostat.NKDVSurface
	if equalSplit {
		surf, err = geostat.NKDVEqualSplit(g, events, opt)
	} else {
		surf, err = geostat.NKDV(g, events, opt)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if err := writeSurfaceCSV(out, g, surf); err != nil {
		return err
	}
	li := surf.ArgMax()
	hot := g.PointAt(surf.Lixels[li].Edge, surf.Lixels[li].Center())
	fmt.Printf("%d events on %d edges (%.4g road units), %d lixels, bandwidth %.4g: %v\n",
		d.N(), g.NumEdges(), g.TotalLength(), len(surf.Lixels), bandwidth, elapsed.Round(time.Millisecond))
	fmt.Printf("worst snap distance %.4g; hottest segment at (%.4g, %.4g) density %.4g -> %s\n",
		worstSnap, hot.X, hot.Y, surf.Values[li], out)

	if geoOut != "" {
		fc := geostat.NewGeoJSON()
		peak := surf.Values[li]
		for i, l := range surf.Lixels {
			if surf.Values[i] < peak/2 {
				continue
			}
			a := g.PointAt(l.Edge, l.Start)
			b := g.PointAt(l.Edge, l.End)
			fc.AddLine([]geostat.Point{a, b}, map[string]any{"density": surf.Values[i]})
		}
		if err := fc.WriteFile(geoOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s (lixels above half peak)\n", geoOut)
	}
	return nil
}

func writeSurfaceCSV(path string, g *geostat.RoadNetwork, surf *geostat.NKDVSurface) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write([]string{"edge", "start", "end", "cx", "cy", "density"}); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i, l := range surf.Lixels {
		c := g.PointAt(l.Edge, l.Center())
		if err := cw.Write([]string{
			strconv.Itoa(int(l.Edge)), ff(l.Start), ff(l.End), ff(c.X), ff(c.Y), ff(surf.Values[i]),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
