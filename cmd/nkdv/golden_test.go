package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./cmd/nkdv -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// elapsedRE matches the wall-clock durations the CLI prints; they are the
// only nondeterministic part of the output and are scrubbed before the
// golden comparison.
var elapsedRE = regexp.MustCompile(`\d+(\.\d+)?(ns|µs|ms|s)\b`)

func scrubElapsed(s string) string { return elapsedRE.ReplaceAllString(s, "<elapsed>") }

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := fn()
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run failed: %v\noutput so far:\n%s", runErr, out)
	}
	return string(out)
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func sha256File(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TestGoldenOutput locks down the CLI's stdout and the lixel CSV for the
// demo grid network with a fixed event set, and proves both are bit-stable
// across worker counts: NKDV fans out one Dijkstra per event, so any
// accumulation-order dependence would show up here as a golden diff.
func TestGoldenOutput(t *testing.T) {
	_, events := writeInputs(t)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "density.csv")
			stdout := captureStdout(t, func() error {
				// Empty network path selects the demo grid; bandwidth and
				// lixel length are fixed so defaults can evolve freely.
				return run("", events, out, "quartic", "", 150, 25, workers, false)
			})
			// The temp output path is the only other nondeterministic token.
			stdout = strings.ReplaceAll(stdout, out, "<out>")
			// One golden pair serves every worker count — that is the
			// determinism claim under test.
			compareGolden(t, filepath.Join("testdata", "golden", "nkdv.stdout"), scrubElapsed(stdout))
			compareGolden(t, filepath.Join("testdata", "golden", "nkdv.csv.sha256"), sha256File(t, out)+"\n")
		})
	}
}
