package main

import (
	"os"
	"path/filepath"
	"testing"

	"geostat/internal/load"
)

func writeArtifact(t *testing.T, dir, name string, mutate func(a *load.Artifact)) string {
	t.Helper()
	a := &load.Artifact{
		Scenario: "t",
		Seed:     1,
		Clients:  2,
		Requests: 20,
		Tools: map[string]*load.ToolStats{
			"kdv": {Count: 20, Status: map[string]int{"200": 20}, P50MS: 30, P95MS: 90, P99MS: 120, MaxMS: 130},
		},
		Server: load.ServerStats{ComputeTotal: 10, SingleflightShared: 3},
	}
	if mutate != nil {
		mutate(a)
	}
	path := filepath.Join(dir, name)
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeSLO(t *testing.T, dir, body string) string {
	t.Helper()
	path := filepath.Join(dir, "slo.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const passingSLO = `{"checks": [
  {"metric": "kdv.p95_ms", "max": 1000},
  {"metric": "server.singleflight_shared", "min": 1}
]}`

// TestExitCodes pins the geogate exit-code contract the CI job and
// Makefile depend on: 0 = pass, 1 = gate failure, 2 = unusable input —
// the same convention as `geobench -compare`.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	good := writeArtifact(t, dir, "good.json", nil)
	degraded := writeArtifact(t, dir, "bad.json", func(a *load.Artifact) {
		a.Tools["kdv"].P95MS = 5000
		a.Tools["kdv"].P50MS = 4000
	})
	slo := writeSLO(t, dir, passingSLO)
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name                              string
		artifact, slo, baseline           string
		want                              int
	}{
		{"slo pass", good, slo, "", 0},
		{"slo fail", degraded, slo, "", 1},
		{"baseline self-compare passes", good, "", good, 0},
		{"baseline regression", degraded, "", good, 1},
		{"both passes", good, slo, good, 0},
		{"missing artifact flag", "", slo, "", 2},
		{"no slo and no baseline", good, "", "", 2},
		{"artifact file absent", filepath.Join(dir, "nope.json"), slo, "", 2},
		{"artifact not json", garbage, slo, "", 2},
		{"baseline file absent", good, "", filepath.Join(dir, "nope.json"), 2},
		{"slo file absent", good, filepath.Join(dir, "nope.json"), "", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.artifact, tc.slo, tc.baseline, 0.5, 50); got != tc.want {
				t.Fatalf("exit code = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestMissingMetricFailsGate: an SLO naming a metric the artifact does
// not carry exits 1 (a gate that silently stops measuring is broken),
// not 2 (the inputs themselves are well-formed).
func TestMissingMetricFailsGate(t *testing.T) {
	dir := t.TempDir()
	good := writeArtifact(t, dir, "good.json", nil)
	slo := writeSLO(t, dir, `{"checks": [{"metric": "vanished.p95_ms", "max": 100}]}`)
	if got := run(good, slo, "", 0.5, 50); got != 1 {
		t.Fatalf("exit code = %d, want 1 for a missing metric", got)
	}
}
