// Command geogate judges a geoload artifact against SLO thresholds and
// a committed baseline artifact.
//
// Usage:
//
//	geogate -artifact LOAD_smoke.json [-slo scenarios/smoke_slo.json]
//	        [-baseline LOAD_baseline.json] [-threshold 0.5] [-min-ms 50]
//
// At least one of -slo / -baseline is required. The SLO pass asserts
// absolute bounds (min/max per artifact metric); the baseline pass
// flags per-tool latency quantiles that grew by more than -threshold
// (fractional) when either side is above the -min-ms noise floor —
// the same semantics as `geobench -compare`.
//
// Exit codes (pinned by tests): 0 = pass, 1 = at least one SLO failure
// or baseline regression, 2 = unusable input (missing file, bad JSON).
package main

import (
	"flag"
	"fmt"
	"os"

	"geostat/internal/load"
	"geostat/internal/load/gate"
)

func main() {
	var (
		artifactPath = flag.String("artifact", "", "geoload artifact to judge (required)")
		sloPath      = flag.String("slo", "", "SLO checks file (JSON)")
		baselinePath = flag.String("baseline", "", "baseline artifact to compare against")
		threshold    = flag.Float64("threshold", 0.5, "fractional latency growth tolerated vs baseline")
		minMS        = flag.Float64("min-ms", 50, "noise floor: quantiles where both sides are below this never regress")
	)
	flag.Parse()
	os.Exit(run(*artifactPath, *sloPath, *baselinePath, *threshold, *minMS))
}

func run(artifactPath, sloPath, baselinePath string, threshold, minMS float64) int {
	if artifactPath == "" {
		fmt.Fprintln(os.Stderr, "geogate: -artifact is required")
		return 2
	}
	if sloPath == "" && baselinePath == "" {
		fmt.Fprintln(os.Stderr, "geogate: at least one of -slo / -baseline is required")
		return 2
	}
	art, err := load.ReadArtifact(artifactPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "geogate: %v\n", err)
		return 2
	}

	failures := 0
	if sloPath != "" {
		slo, err := gate.ReadSLOFile(sloPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "geogate: %v\n", err)
			return 2
		}
		results, failed := gate.Evaluate(art, slo)
		fmt.Printf("SLO checks (%s):\n", sloPath)
		gate.WriteResults(os.Stdout, results)
		failures += failed
	}
	if baselinePath != "" {
		base, err := load.ReadArtifact(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "geogate: %v\n", err)
			return 2
		}
		rows, regressed := gate.Compare(base, art, threshold, minMS)
		fmt.Printf("baseline comparison (%s, threshold %.0f%%, floor %.0fms):\n",
			baselinePath, threshold*100, minMS)
		gate.WriteCompareTable(os.Stdout, rows)
		failures += regressed
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "geogate: %d check(s) failed\n", failures)
		return 1
	}
	fmt.Println("geogate: all checks passed")
	return 0
}
