// Command geoload drives a live geostatd with a declarative load
// scenario and writes a structured artifact for cmd/geogate.
//
// Usage:
//
//	geoload -scenario scenarios/smoke.yaml -base http://127.0.0.1:8080 \
//	        [-out LOAD_smoke.json] [-timeout 5m] [-plan]
//
// The scenario file (YAML subset or JSON, see internal/load) declares
// client profiles — map-zoom sessions with zipf hot-key skew, cold
// dataset uploads, mixed-tool steady state, cancellation storms,
// lockstep hammers — and a seed. The request mix is a pure function of
// the scenario, so two runs of the same file replay the same session
// byte for byte; -plan prints that request plan without touching the
// network. The artifact (LOAD_<name>.json by default) carries per-tool
// p50/p95/p99 latency, error/499/503 rates, and cache/coalescing
// counter deltas scraped from /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"geostat/internal/load"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "scenario file (YAML subset or JSON; required)")
		base         = flag.String("base", "http://127.0.0.1:8080", "base URL of the geostatd under test")
		out          = flag.String("out", "", "artifact path (default LOAD_<scenario-name>.json)")
		timeout      = flag.Duration("timeout", 5*time.Minute, "overall run deadline (0 disables)")
		planOnly     = flag.Bool("plan", false, "print the deterministic request plan and exit without running")
	)
	flag.Parse()
	if err := run(*scenarioPath, *base, *out, *timeout, *planOnly); err != nil {
		fmt.Fprintln(os.Stderr, "geoload:", err)
		os.Exit(1)
	}
}

func run(scenarioPath, base, out string, timeout time.Duration, planOnly bool) error {
	if scenarioPath == "" {
		return fmt.Errorf("-scenario is required")
	}
	src, err := os.ReadFile(scenarioPath)
	if err != nil {
		return err
	}
	sc, err := load.ParseScenario(src)
	if err != nil {
		return err
	}

	if planOnly {
		plans, perr := load.Plan(sc)
		if perr != nil {
			return perr
		}
		fmt.Print(load.FormatPlan(plans))
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	art, err := load.Run(ctx, sc, load.Options{BaseURL: base, Logf: log.Printf})
	if err != nil {
		return err
	}
	if out == "" {
		out = "LOAD_" + sc.Name + ".json"
	}
	if err := art.WriteFile(out); err != nil {
		return err
	}
	log.Printf("wrote %s (%d requests over %.0f ms)", out, art.Requests, art.DurationMS)
	return nil
}
