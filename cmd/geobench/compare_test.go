package main

import (
	"strings"
	"testing"
)

func summaryOf(results ...benchResult) benchSummary {
	return benchSummary{Results: results}
}

func TestCompareSummaries(t *testing.T) {
	oldS := summaryOf(
		benchResult{ID: "A", OK: true, ElapsedMS: 100},
		benchResult{ID: "B", OK: true, ElapsedMS: 200},
		benchResult{ID: "C", OK: true, ElapsedMS: 5},
		benchResult{ID: "D", OK: true, ElapsedMS: 50},
		benchResult{ID: "E", OK: false, ElapsedMS: 10},
		benchResult{ID: "GONE", OK: true, ElapsedMS: 1},
	)
	newS := summaryOf(
		benchResult{ID: "A", OK: true, ElapsedMS: 130},  // +30% → regressed
		benchResult{ID: "B", OK: true, ElapsedMS: 150},  // -25% → faster
		benchResult{ID: "C", OK: true, ElapsedMS: 9},    // +80% but under floor → ok
		benchResult{ID: "D", OK: false, ElapsedMS: 48},  // stopped passing → broke
		benchResult{ID: "E", OK: true, ElapsedMS: 12},   // started passing → fixed
		benchResult{ID: "NEW", OK: true, ElapsedMS: 10}, // no baseline → new
	)
	rows, regressions := compareSummaries(oldS, newS, 0.15, 25)
	if regressions != 2 {
		t.Fatalf("regressions = %d, want 2 (A slowed, D broke)", regressions)
	}
	status := map[string]string{}
	for _, r := range rows {
		status[r.ID] = r.Status
	}
	want := map[string]string{
		"A": "REGRESSED", "B": "faster", "C": "ok", "D": "BROKE",
		"E": "fixed", "NEW": "new", "GONE": "removed",
	}
	for id, ws := range want {
		if status[id] != ws {
			t.Errorf("%s: status %q, want %q", id, status[id], ws)
		}
	}
}

func TestCompareThresholdBoundary(t *testing.T) {
	oldS := summaryOf(benchResult{ID: "X", OK: true, ElapsedMS: 100})
	// Exactly at the threshold is NOT a regression (strictly greater).
	newS := summaryOf(benchResult{ID: "X", OK: true, ElapsedMS: 115})
	if _, n := compareSummaries(oldS, newS, 0.15, 25); n != 0 {
		t.Errorf("delta == threshold flagged as regression")
	}
	newS = summaryOf(benchResult{ID: "X", OK: true, ElapsedMS: 115.2})
	if _, n := compareSummaries(oldS, newS, 0.15, 25); n != 1 {
		t.Errorf("delta just above threshold not flagged")
	}
}

func TestCompareFloorUsesEitherSide(t *testing.T) {
	// old is under the floor but new crossed it: still a regression —
	// a benchmark that grew from 10ms to 40ms quadrupled.
	oldS := summaryOf(benchResult{ID: "X", OK: true, ElapsedMS: 10})
	newS := summaryOf(benchResult{ID: "X", OK: true, ElapsedMS: 40})
	if _, n := compareSummaries(oldS, newS, 0.15, 25); n != 1 {
		t.Errorf("regression crossing the floor not flagged")
	}
}

func TestWriteCompareTable(t *testing.T) {
	rows := []compareRow{
		{ID: "A", OldMS: 100, NewMS: 130, Delta: 0.3, Status: "REGRESSED"},
		{ID: "NEW", NewMS: 10, Status: "new"},
		{ID: "GONE", OldMS: 5, Status: "removed"},
	}
	var sb strings.Builder
	writeCompareTable(&sb, rows)
	out := sb.String()
	for _, want := range []string{"REGRESSED", "+30.0%", "new", "removed", "130.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
