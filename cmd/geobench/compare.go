package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// compareRow is one benchmark's entry in the -compare delta table.
type compareRow struct {
	ID     string
	OldMS  float64
	NewMS  float64
	Delta  float64 // (new-old)/old; NaN-free because rows need both sides
	Status string  // "ok", "faster", "REGRESSED", "BROKE", "fixed"
}

// compareSummaries diffs two -json run summaries by experiment id and
// returns the delta table plus the number of regressions. A run is
// regressed when it slowed down by more than threshold (fractional, e.g.
// 0.15) or stopped passing. Experiments where both sides ran faster than
// minMS are never regressions: at that scale wall clock is scheduler
// noise, not signal. Experiments present on only one side are listed
// ("new"/"removed") but never fail the comparison.
func compareSummaries(oldS, newS benchSummary, threshold, minMS float64) ([]compareRow, int) {
	oldByID := make(map[string]benchResult, len(oldS.Results))
	for _, r := range oldS.Results {
		oldByID[r.ID] = r
	}
	seen := make(map[string]bool, len(newS.Results))
	rows := make([]compareRow, 0, len(newS.Results))
	regressions := 0
	for _, nr := range newS.Results {
		seen[nr.ID] = true
		or, ok := oldByID[nr.ID]
		if !ok {
			rows = append(rows, compareRow{ID: nr.ID, NewMS: nr.ElapsedMS, Status: "new"})
			continue
		}
		row := compareRow{ID: nr.ID, OldMS: or.ElapsedMS, NewMS: nr.ElapsedMS}
		if or.ElapsedMS > 0 {
			row.Delta = (nr.ElapsedMS - or.ElapsedMS) / or.ElapsedMS
		}
		switch {
		case or.OK && !nr.OK:
			row.Status = "BROKE"
			regressions++
		case !or.OK && nr.OK:
			row.Status = "fixed"
		case row.Delta > threshold && (or.ElapsedMS >= minMS || nr.ElapsedMS >= minMS):
			row.Status = "REGRESSED"
			regressions++
		case row.Delta < -threshold:
			row.Status = "faster"
		default:
			row.Status = "ok"
		}
		rows = append(rows, row)
	}
	for _, or := range oldS.Results {
		if !seen[or.ID] {
			rows = append(rows, compareRow{ID: or.ID, OldMS: or.ElapsedMS, Status: "removed"})
		}
	}
	return rows, regressions
}

// writeCompareTable renders the delta table.
func writeCompareTable(w io.Writer, rows []compareRow) {
	fmt.Fprintf(w, "%-4s %12s %12s %8s  %s\n", "id", "old ms", "new ms", "delta", "status")
	for _, r := range rows {
		old, new_ := "-", "-"
		if r.Status != "new" {
			old = fmt.Sprintf("%.1f", r.OldMS)
		}
		if r.Status != "removed" {
			new_ = fmt.Sprintf("%.1f", r.NewMS)
		}
		delta := "-"
		if r.Status != "new" && r.Status != "removed" && r.OldMS > 0 {
			delta = fmt.Sprintf("%+.1f%%", r.Delta*100)
		}
		fmt.Fprintf(w, "%-4s %12s %12s %8s  %s\n", r.ID, old, new_, delta, r.Status)
	}
}

// readSummary loads a -json run summary from disk.
func readSummary(path string) (benchSummary, error) {
	var s benchSummary
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// runCompare implements `geobench -compare old.json new.json`: print the
// per-benchmark delta table and exit non-zero when anything regressed.
func runCompare(oldPath, newPath string, threshold, minMS float64) int {
	oldS, err := readSummary(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "geobench: %v\n", err)
		return 2
	}
	newS, err := readSummary(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "geobench: %v\n", err)
		return 2
	}
	rows, regressions := compareSummaries(oldS, newS, threshold, minMS)
	writeCompareTable(os.Stdout, rows)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "geobench: %d benchmark(s) regressed more than %.0f%%\n", regressions, threshold*100)
		return 1
	}
	fmt.Printf("no regressions beyond %.0f%% (floor %.0fms)\n", threshold*100, minMS)
	return 0
}
