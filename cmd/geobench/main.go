// Command geobench regenerates every table- and figure-shaped artifact of
// the paper (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// recorded outputs).
//
// Usage:
//
//	geobench                     # run every experiment
//	geobench -exp F2,C1          # run selected experiments
//	geobench -quick              # ~10x smaller datasets (smoke run)
//	geobench -dir out/           # also write PNG/CSV artifacts
//	geobench -workers 4          # bound parallelism (default: every core)
//	geobench -list               # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"geostat/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		quick   = flag.Bool("quick", false, "shrink dataset sizes ~10x")
		dir     = flag.String("dir", "", "directory for generated PNG/CSV artifacts")
		seed    = flag.Int64("seed", 42, "seed for all generators and simulations")
		workers = flag.Int("workers", 0, "parallelism for every parallel-capable call (0: every core, 1: serial)")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-3s %s\n", r.ID, r.Title)
		}
		return
	}

	var selected []experiments.Runner
	if *exp == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			r, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "geobench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, r)
		}
	}

	failed := 0
	for _, r := range selected {
		fmt.Printf("=== %s: %s ===\n", r.ID, r.Title)
		cfg := &experiments.Config{Out: os.Stdout, Dir: *dir, Seed: *seed, Quick: *quick, Workers: *workers}
		start := time.Now()
		if err := r.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", r.ID, err)
			failed++
		}
		fmt.Printf("[%s done in %v]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "geobench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
