// Command geobench regenerates every table- and figure-shaped artifact of
// the paper (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// recorded outputs).
//
// Usage:
//
//	geobench                     # run every experiment
//	geobench -exp F2,C1          # run selected experiments
//	geobench -quick              # ~10x smaller datasets (smoke run)
//	geobench -dir out/           # also write PNG/CSV artifacts
//	geobench -workers 4          # bound parallelism (default: every core)
//	geobench -list               # list experiment ids
//	geobench -json bench.json    # also write a machine-readable run summary
//	geobench -compare old.json new.json
//	                             # diff two run summaries; exit 1 on regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"geostat/internal/experiments"
)

// benchResult is one experiment's entry in the -json summary. ElapsedMS is
// wall clock for the whole runner (dataset generation included), which is
// what CI trend dashboards track between commits.
type benchResult struct {
	ID        string  `json:"id"`
	Title     string  `json:"title"`
	OK        bool    `json:"ok"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// benchSummary is the top-level -json document.
type benchSummary struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Seed       int64         `json:"seed"`
	Quick      bool          `json:"quick"`
	Workers    int           `json:"workers"`
	Results    []benchResult `json:"results"`
}

func main() {
	var (
		exp     = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		quick   = flag.Bool("quick", false, "shrink dataset sizes ~10x")
		dir     = flag.String("dir", "", "directory for generated PNG/CSV artifacts")
		seed    = flag.Int64("seed", 42, "seed for all generators and simulations")
		workers = flag.Int("workers", 0, "parallelism for every parallel-capable call (0: every core, 1: serial)")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.String("json", "", "write a machine-readable run summary to this file")

		compare   = flag.Bool("compare", false, "compare two -json summaries (old new) instead of running")
		threshold = flag.Float64("threshold", 0.15, "with -compare: fractional slowdown that counts as a regression")
		minMS     = flag.Float64("min-ms", 25, "with -compare: ignore slowdowns where both runs are faster than this")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "geobench: -compare needs exactly two summary files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold, *minMS))
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-3s %s\n", r.ID, r.Title)
		}
		return
	}

	var selected []experiments.Runner
	if *exp == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			r, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "geobench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, r)
		}
	}

	summary := benchSummary{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       *seed,
		Quick:      *quick,
		Workers:    *workers,
	}
	failed := 0
	for _, r := range selected {
		fmt.Printf("=== %s: %s ===\n", r.ID, r.Title)
		cfg := &experiments.Config{Out: os.Stdout, Dir: *dir, Seed: *seed, Quick: *quick, Workers: *workers}
		start := time.Now()
		err := r.Run(cfg)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", r.ID, err)
			failed++
		}
		fmt.Printf("[%s done in %v]\n\n", r.ID, elapsed.Round(time.Millisecond))
		summary.Results = append(summary.Results, benchResult{
			ID: r.ID, Title: r.Title, OK: err == nil,
			ElapsedMS: float64(elapsed.Nanoseconds()) / 1e6,
		})
	}
	if *jsonOut != "" {
		if err := writeSummary(*jsonOut, summary); err != nil {
			fmt.Fprintf(os.Stderr, "geobench: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "geobench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

func writeSummary(path string, s benchSummary) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
