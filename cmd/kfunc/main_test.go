package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"geostat"
)

func writeDataset(t *testing.T, temporal bool) string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	box := geostat.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	var d *geostat.Dataset
	if temporal {
		d = geostat.SpatioTemporalOutbreak(rng, 400, box, 0, 50, []geostat.OutbreakWave{
			{Center: geostat.Point{X: 30, Y: 30}, Sigma: 5, TimeMean: 15, TimeSigma: 4, Weight: 1},
		}, 0.2)
	} else {
		d = geostat.GaussianClusters(rng, 400, box, []geostat.GaussianCluster{
			{Center: geostat.Point{X: 30, Y: 30}, Sigma: 5, Weight: 1},
		}, 0.2)
	}
	path := filepath.Join(t.TempDir(), "events.csv")
	if err := geostat.WriteCSVFile(path, d); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSpatialWithCSV(t *testing.T) {
	in := writeDataset(t, false)
	out := filepath.Join(t.TempDir(), "plot.csv")
	if err := run(in, out, 0, 0, 5, 3, 9, 1, 1, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty plot CSV")
	}
}

func TestRunTemporal(t *testing.T) {
	in := writeDataset(t, true)
	out := filepath.Join(t.TempDir(), "st.csv")
	if err := run(in, out, 10, 0, 3, 2, 5, 1, 1, true); err != nil {
		t.Fatal(err)
	}
	// Non-temporal dataset with -temporal flag errors.
	spatial := writeDataset(t, false)
	if err := run(spatial, "", 10, 0, 3, 2, 5, 1, 1, true); err == nil {
		t.Error("temporal mode on spatial data accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.csv"), "", 0, 0, 5, 3, 9, 1, 1, false); err == nil {
		t.Error("missing input accepted")
	}
	tiny := filepath.Join(t.TempDir(), "tiny.csv")
	if err := os.WriteFile(tiny, []byte("x,y\n1,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(tiny, "", 0, 0, 5, 3, 9, 1, 1, false); err == nil {
		t.Error("single event accepted")
	}
}
