package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./cmd/kfunc -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// elapsedRE scrubs the printed wall-clock durations — the only
// nondeterministic part of the CLI output.
var elapsedRE = regexp.MustCompile(`\d+(\.\d+)?(ns|µs|ms|s)\b`)

func scrubElapsed(s string) string { return elapsedRE.ReplaceAllString(s, "<elapsed>") }

func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := fn()
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run failed: %v\noutput so far:\n%s", runErr, out)
	}
	return string(out)
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenOutput locks down the plot table (observed curve, Monte-Carlo
// envelopes, regime verdicts) for a fixed dataset and seed, and proves
// the output is bit-stable across worker counts: the envelope fan-out
// must give the same simulations whichever goroutine runs them.
func TestGoldenOutput(t *testing.T) {
	in := writeDataset(t, false)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			csvOut := filepath.Join(t.TempDir(), "plot.csv")
			stdout := captureStdout(t, func() error {
				return run(in, csvOut, 0, 0, 6, 3, 19, workers, 1, false)
			})
			// Scrub the temp path and the elapsed time — the only
			// nondeterministic tokens.
			stdout = scrubElapsed(strings.ReplaceAll(stdout, csvOut, "<out>"))
			// The plot CSV is fully deterministic — fold it into the same
			// golden document so format drift is caught too.
			plot, err := os.ReadFile(csvOut)
			if err != nil {
				t.Fatal(err)
			}
			got := stdout + "---- plot.csv ----\n" + string(plot)
			compareGolden(t, filepath.Join("testdata", "golden", "kfunc.stdout"), got)
		})
	}
}
