// Command kfunc computes a K-function plot (Definition 3 of the paper) for
// a CSV of events and prints the observed curve with Monte-Carlo envelopes
// and a clustered/random/dispersed verdict per threshold.
//
// Usage:
//
//	kfunc -in events.csv [-smax 12] [-steps 10] [-sims 39] [-csv plot.csv]
//
// With -temporal, events must carry a t column and the spatiotemporal
// K-function surface (Equation 8) is computed instead.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"

	"geostat"
)

func main() {
	var (
		in       = flag.String("in", "", "input CSV (header x,y[,t])")
		sMax     = flag.Float64("smax", 0, "largest spatial threshold (0 = 10% of the longer bbox side)")
		steps    = flag.Int("steps", 10, "number of thresholds")
		sims     = flag.Int("sims", 39, "number of CSR simulations for the envelope")
		seed     = flag.Int64("seed", 1, "simulation seed")
		workers  = flag.Int("workers", -1, "parallel workers (-1 = all cores)")
		csvOut   = flag.String("csv", "", "also write the plot as CSV")
		temporal = flag.Bool("temporal", false, "compute the spatiotemporal K-function surface")
		tMax     = flag.Float64("tmax", 0, "largest temporal threshold (0 = 25% of the time range)")
		tSteps   = flag.Int("tsteps", 5, "number of temporal thresholds")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "kfunc: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *csvOut, *sMax, *tMax, *steps, *tSteps, *sims, *workers, *seed, *temporal); err != nil {
		fmt.Fprintf(os.Stderr, "kfunc: %v\n", err)
		os.Exit(1)
	}
}

func run(in, csvOut string, sMax, tMax float64, steps, tSteps, sims, workers int, seed int64, temporal bool) error {
	d, err := geostat.ReadCSVFile(in)
	if err != nil {
		return err
	}
	if d.N() < 2 {
		return fmt.Errorf("need at least 2 events, got %d", d.N())
	}
	box := d.Bounds()
	if sMax == 0 {
		side := box.Width()
		if box.Height() > side {
			side = box.Height()
		}
		sMax = side * 0.10
	}
	thresholds := make([]float64, steps)
	for i := range thresholds {
		thresholds[i] = sMax * float64(i+1) / float64(steps)
	}
	rng := geostat.NewRand(seed)
	start := time.Now()

	if temporal {
		return runTemporal(d, csvOut, thresholds, tMax, tSteps, sims, workers, rng, start)
	}

	// Closed-form CSR screens before the Monte-Carlo plot.
	if q, qerr := geostat.QuadratTest(d.Points(), box, 5, 5); qerr == nil {
		fmt.Printf("quadrat test (5x5): chi2=%.1f df=%d p=%.4f VMR=%.2f -> %s\n",
			q.ChiSquare, q.DF, q.P, q.VMR, q.Regime(0.05))
	}
	if ce, ceerr := geostat.ClarkEvans(d.Points(), box); ceerr == nil {
		fmt.Printf("Clark-Evans: R=%.3f z=%.1f p=%.4f -> %s\n", ce.R, ce.Z, ce.P, ce.Regime(0.05))
	}

	plot, err := geostat.KFunctionPlot(d.Points(), geostat.KPlotOptions{
		Thresholds:  thresholds,
		Simulations: sims,
		Window:      box,
		Workers:     workers,
	}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d, window %.4g x %.4g, %d thresholds, L=%d simulations: %v\n",
		d.N(), box.Width(), box.Height(), steps, sims, time.Since(start).Round(time.Millisecond))
	fmt.Printf("%10s %12s %12s %12s  %s\n", "s", "K(s)", "L(s)", "U(s)", "regime")
	for i, s := range plot.S {
		fmt.Printf("%10.4g %12.0f %12.0f %12.0f  %s\n", s, plot.K[i], plot.Lo[i], plot.Hi[i], plot.RegimeAt(i))
	}
	if csvOut != "" {
		if err := writePlotCSV(csvOut, plot); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvOut)
	}
	return nil
}

func runTemporal(d *geostat.Dataset, csvOut string, sThresholds []float64, tMax float64, tSteps, sims, workers int, rng *rand.Rand, start time.Time) error {
	if !d.HasTimes() {
		return fmt.Errorf("-temporal requires a t column in the CSV")
	}
	lo, hi, _ := d.TimeRange()
	if tMax == 0 {
		tMax = (hi - lo) * 0.25
	}
	tThresholds := make([]float64, tSteps)
	for i := range tThresholds {
		tThresholds[i] = tMax * float64(i+1) / float64(tSteps)
	}
	plot, err := geostat.STKFunctionPlot(d, sThresholds, tThresholds, sims, workers, rng)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d spatiotemporal events, %dx%d thresholds, L=%d simulations: %v\n",
		d.N(), len(sThresholds), tSteps, sims, time.Since(start).Round(time.Millisecond))
	fmt.Printf("%10s %10s %12s %12s %12s  %s\n", "s", "t", "K(s,t)", "L", "U", "regime")
	for a, s := range plot.S {
		for b, t := range plot.T {
			k, l, u := plot.At(a, b)
			fmt.Printf("%10.4g %10.4g %12.0f %12.0f %12.0f  %s\n", s, t, k, l, u, plot.RegimeAt(a, b))
		}
	}
	if csvOut != "" {
		f, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		defer f.Close()
		cw := csv.NewWriter(f)
		_ = cw.Write([]string{"s", "t", "k", "lo", "hi", "regime"})
		for a, s := range plot.S {
			for b, t := range plot.T {
				k, l, u := plot.At(a, b)
				_ = cw.Write([]string{
					fmtF(s), fmtF(t), fmtF(k), fmtF(l), fmtF(u), plot.RegimeAt(a, b).String(),
				})
			}
		}
		cw.Flush()
		return cw.Error()
	}
	return nil
}

func writePlotCSV(path string, plot *geostat.KPlot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write([]string{"s", "k", "lo", "hi", "regime"}); err != nil {
		return err
	}
	for i, s := range plot.S {
		if err := cw.Write([]string{
			fmtF(s), fmtF(plot.K[i]), fmtF(plot.Lo[i]), fmtF(plot.Hi[i]), plot.RegimeAt(i).String(),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
