// Command geostatd serves the geostat analytics tools (KDV, K-function,
// Moran's I, General G, IDW) over HTTP with per-request timeouts, an
// in-flight concurrency cap, and an LRU result cache.
//
// Usage:
//
//	geostatd [-addr :8080] [-timeout 30s] [-tool-timeout kdv=2s ...]
//	         [-max-inflight 16] [-max-queue 64] [-cache-mb 64]
//	         [-workers -1] [-load name=path ...]
//	         [-slow-ms 0] [-debug-addr addr]
//
// Identical in-flight requests are coalesced into one computation
// (single-flight); computations beyond -max-inflight wait in a queue
// bounded by -max-queue, and overflow is shed with 503 + Retry-After.
// A computation that exceeds its timeout budget (-timeout, or the
// per-tool -tool-timeout override) returns 504 + Retry-After.
//
// Observability: GET /metrics serves Prometheus text (per-tool latency
// histograms, cache hit/miss/eviction counters, in-flight gauge) and
// GET /debug/trace/last the span tree of the last tool request.
// -slow-ms N logs the full stage tree of any request slower than N ms.
// -debug-addr starts a second listener with net/http/pprof — opt-in so
// profiling endpoints never share the public port.
//
// -load preloads CSV datasets at startup (repeatable); more datasets can
// be uploaded or generated at runtime via POST /v1/datasets/{name} and
// POST /v1/generate. See the README "Serving" section for the endpoint
// reference and a worked curl session.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"geostat"
	"geostat/internal/serve"
)

// loadFlags collects repeated -load name=path arguments.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// timeoutFlags collects repeated -tool-timeout tool=duration arguments
// into the per-tool budget map.
type timeoutFlags map[string]time.Duration

func (t timeoutFlags) String() string {
	parts := make([]string, 0, len(t))
	for tool, d := range t {
		parts = append(parts, tool+"="+d.String()) //lint:allow maporder flag help text only, order is cosmetic
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (t timeoutFlags) Set(v string) error {
	tool, raw, ok := strings.Cut(v, "=")
	if !ok || tool == "" {
		return fmt.Errorf("want tool=duration, got %q", v)
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return err
	}
	t[tool] = d
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request computation timeout (0 disables)")
		maxInFlight = flag.Int("max-inflight", 16, "max concurrently executing tool computations (0 = unlimited)")
		maxQueue    = flag.Int("max-queue", 64, "max computations waiting for an in-flight slot; overflow is shed with 503 (0 = unbounded queue, <0 = never queue)")
		cacheMB     = flag.Int64("cache-mb", 64, "result cache size in MiB (0 disables caching)")
		workers     = flag.Int("workers", -1, "worker goroutines per computation (-1 = all cores)")
		slowMS      = flag.Int64("slow-ms", 0, "log the stage tree of requests slower than this many ms (0 disables)")
		debugAddr   = flag.String("debug-addr", "", "optional second listen address serving net/http/pprof (empty disables)")
		loads        loadFlags
		toolTimeouts = make(timeoutFlags)
	)
	flag.Var(&loads, "load", "preload a CSV dataset as name=path (repeatable)")
	flag.Var(&toolTimeouts, "tool-timeout", "per-tool computation budget as tool=duration, e.g. kdv=2s (repeatable; overrides -timeout)")
	flag.Parse()

	cfg := serve.Config{
		Timeout:       *timeout,
		ToolTimeouts:  toolTimeouts,
		MaxInFlight:   *maxInFlight,
		MaxQueue:      *maxQueue,
		CacheBytes:    *cacheMB << 20,
		Workers:       *workers,
		SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
	}
	if err := run(*addr, cfg, *debugAddr, loads); err != nil {
		fmt.Fprintln(os.Stderr, "geostatd:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg serve.Config, debugAddr string, loads []string) error {
	srv := serve.NewServer(cfg)
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -load %q: want name=path", spec)
		}
		d, err := geostat.ReadCSVFile(path)
		if err != nil {
			return fmt.Errorf("load %q: %w", spec, err)
		}
		if _, err := srv.Registry().Put(name, d); err != nil {
			return fmt.Errorf("load %q: %w", spec, err)
		}
		log.Printf("loaded dataset %q: %d points", name, d.N())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ds := &http.Server{Addr: debugAddr, Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
		go func() { //lint:allow norawgoroutine debug listener lives for the process; killed on exit
			log.Printf("pprof listening on %s", debugAddr)
			if err := ds.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("pprof listener: %v", err)
			}
		}()
		defer ds.Close()
	}

	hs := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }() //lint:allow norawgoroutine ListenAndServe must not block the shutdown watcher; it exits via Shutdown below
	log.Printf("geostatd listening on %s (timeout %s, max-inflight %d, max-queue %d, cache %d MiB)",
		addr, cfg.Timeout, cfg.MaxInFlight, cfg.MaxQueue, cfg.CacheBytes>>20)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return nil
}
