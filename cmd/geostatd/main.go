// Command geostatd serves the geostat analytics tools (KDV, K-function,
// Moran's I, General G, IDW) over HTTP with per-request timeouts, an
// in-flight concurrency cap, and an LRU result cache.
//
// Usage:
//
//	geostatd [-addr :8080] [-timeout 30s] [-max-inflight 16]
//	         [-cache-mb 64] [-workers -1] [-load name=path ...]
//	         [-slow-ms 0] [-debug-addr addr]
//
// Observability: GET /metrics serves Prometheus text (per-tool latency
// histograms, cache hit/miss/eviction counters, in-flight gauge) and
// GET /debug/trace/last the span tree of the last tool request.
// -slow-ms N logs the full stage tree of any request slower than N ms.
// -debug-addr starts a second listener with net/http/pprof — opt-in so
// profiling endpoints never share the public port.
//
// -load preloads CSV datasets at startup (repeatable); more datasets can
// be uploaded or generated at runtime via POST /v1/datasets/{name} and
// POST /v1/generate. See the README "Serving" section for the endpoint
// reference and a worked curl session.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"geostat"
	"geostat/internal/serve"
)

// loadFlags collects repeated -load name=path arguments.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request computation timeout (0 disables)")
		maxInFlight = flag.Int("max-inflight", 16, "max concurrently executing tool requests (0 = unlimited)")
		cacheMB     = flag.Int64("cache-mb", 64, "result cache size in MiB (0 disables caching)")
		workers     = flag.Int("workers", -1, "worker goroutines per computation (-1 = all cores)")
		slowMS      = flag.Int64("slow-ms", 0, "log the stage tree of requests slower than this many ms (0 disables)")
		debugAddr   = flag.String("debug-addr", "", "optional second listen address serving net/http/pprof (empty disables)")
		loads       loadFlags
	)
	flag.Var(&loads, "load", "preload a CSV dataset as name=path (repeatable)")
	flag.Parse()

	if err := run(*addr, *timeout, *maxInFlight, *cacheMB, *workers, *slowMS, *debugAddr, loads); err != nil {
		fmt.Fprintln(os.Stderr, "geostatd:", err)
		os.Exit(1)
	}
}

func run(addr string, timeout time.Duration, maxInFlight int, cacheMB int64, workers int, slowMS int64, debugAddr string, loads []string) error {
	srv := serve.NewServer(serve.Config{
		Timeout:       timeout,
		MaxInFlight:   maxInFlight,
		CacheBytes:    cacheMB << 20,
		Workers:       workers,
		SlowThreshold: time.Duration(slowMS) * time.Millisecond,
	})
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -load %q: want name=path", spec)
		}
		d, err := geostat.ReadCSVFile(path)
		if err != nil {
			return fmt.Errorf("load %q: %w", spec, err)
		}
		if _, err := srv.Registry().Put(name, d); err != nil {
			return fmt.Errorf("load %q: %w", spec, err)
		}
		log.Printf("loaded dataset %q: %d points", name, d.N())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ds := &http.Server{Addr: debugAddr, Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
		go func() { //lint:allow norawgoroutine debug listener lives for the process; killed on exit
			log.Printf("pprof listening on %s", debugAddr)
			if err := ds.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("pprof listener: %v", err)
			}
		}()
		defer ds.Close()
	}

	hs := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }() //lint:allow norawgoroutine ListenAndServe must not block the shutdown watcher; it exits via Shutdown below
	log.Printf("geostatd listening on %s (timeout %s, max-inflight %d, cache %d MiB)",
		addr, timeout, maxInFlight, cacheMB)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return nil
}
