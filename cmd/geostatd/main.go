// Command geostatd serves the geostat analytics tools (KDV, K-function,
// Moran's I, General G, IDW) over HTTP with per-request timeouts, an
// in-flight concurrency cap, and an LRU result cache.
//
// Usage:
//
//	geostatd [-addr :8080] [-timeout 30s] [-max-inflight 16]
//	         [-cache-mb 64] [-workers -1] [-load name=path ...]
//
// -load preloads CSV datasets at startup (repeatable); more datasets can
// be uploaded or generated at runtime via POST /v1/datasets/{name} and
// POST /v1/generate. See the README "Serving" section for the endpoint
// reference and a worked curl session.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"geostat"
	"geostat/internal/serve"
)

// loadFlags collects repeated -load name=path arguments.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request computation timeout (0 disables)")
		maxInFlight = flag.Int("max-inflight", 16, "max concurrently executing tool requests (0 = unlimited)")
		cacheMB     = flag.Int64("cache-mb", 64, "result cache size in MiB (0 disables caching)")
		workers     = flag.Int("workers", -1, "worker goroutines per computation (-1 = all cores)")
		loads       loadFlags
	)
	flag.Var(&loads, "load", "preload a CSV dataset as name=path (repeatable)")
	flag.Parse()

	if err := run(*addr, *timeout, *maxInFlight, *cacheMB, *workers, loads); err != nil {
		fmt.Fprintln(os.Stderr, "geostatd:", err)
		os.Exit(1)
	}
}

func run(addr string, timeout time.Duration, maxInFlight int, cacheMB int64, workers int, loads []string) error {
	srv := serve.NewServer(serve.Config{
		Timeout:     timeout,
		MaxInFlight: maxInFlight,
		CacheBytes:  cacheMB << 20,
		Workers:     workers,
	})
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -load %q: want name=path", spec)
		}
		d, err := geostat.ReadCSVFile(path)
		if err != nil {
			return fmt.Errorf("load %q: %w", spec, err)
		}
		if _, err := srv.Registry().Put(name, d); err != nil {
			return fmt.Errorf("load %q: %w", spec, err)
		}
		log.Printf("loaded dataset %q: %d points", name, d.N())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }() //lint:allow norawgoroutine ListenAndServe must not block the shutdown watcher; it exits via Shutdown below
	log.Printf("geostatd listening on %s (timeout %s, max-inflight %d, cache %d MiB)",
		addr, timeout, maxInFlight, cacheMB)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return nil
}
