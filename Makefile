GO ?= go

# Everything runs under the race detector: the parallel engine owns all
# goroutines, so any package may fan out — including internal/serve,
# whose httptest suite drives concurrent cache and registry access.
RACE_PKGS = ./...

# Coverage ratchet: `make cover` fails if total statement coverage drops
# below this. Raise it when coverage improves; never lower it.
COVER_RATCHET = 80.0

.PHONY: check vet build test race lint lint-debt debt-gate cover fuzz-smoke bench bench-json bench-diff smoke load-smoke load-baseline shard-smoke shard-baseline

check: vet build test race lint debt-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# geolint: the project-specific analyzers (see internal/lint). One
# invocation typechecks the whole module with cross-package fact
# propagation and serves both outputs: human-readable findings on
# stdout (the CI log) and a SARIF 2.1.0 report at artifacts/geolint.sarif
# (the code-scanning upload). Exits non-zero only on gating findings;
# advisory analyzers report without failing. Suppress individual
# findings with //lint:allow <analyzer> <reason>.
lint:
	@mkdir -p artifacts
	$(GO) run ./cmd/geolint -sarif -o artifacts/geolint.sarif ./...

# Suppression-debt budget. lint-debt regenerates the committed baseline
# (run it when a review accepts a new //lint:allow or when debt shrinks);
# debt-gate is the CI check: fail when the current inventory exceeds the
# budget for any analyzer or any directive lacks a reason. The fresh
# report lands in artifacts/ next to the SARIF for upload.
lint-debt:
	$(GO) run ./cmd/geolint -debt -o lint_debt.json
	@echo "wrote lint_debt.json"

debt-gate:
	@mkdir -p artifacts
	$(GO) run ./cmd/geolint -debt -debt-baseline lint_debt.json -o artifacts/lint_debt.json

cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (ratchet: $(COVER_RATCHET)%)"; \
	awk -v t=$$total -v r=$(COVER_RATCHET) 'BEGIN { exit t+0 < r+0 ? 1 : 0 }' || \
	{ echo "coverage $$total% is below the ratchet $(COVER_RATCHET)%"; exit 1; }

# Short fuzz runs of every parser, seeded from the committed corpora
# under */testdata/fuzz. ~10s per target.
fuzz-smoke:
	$(GO) test ./internal/geojson -run '^$$' -fuzz FuzzParse -fuzztime 10s
	$(GO) test ./internal/dataset -run '^$$' -fuzz FuzzReadCSV -fuzztime 10s
	$(GO) test ./internal/network -run '^$$' -fuzz FuzzReadEdgeCSV -fuzztime 10s
	$(GO) test ./internal/lint/cfg -run '^$$' -fuzz FuzzBuild -fuzztime 10s

bench:
	$(GO) test -run NONE -bench . -benchmem .

# Machine-readable benchmark snapshot: every geobench experiment's wall
# clock as JSON. BENCH_baseline.json is the committed reference point;
# regenerate it (on quiet hardware) when the perf profile changes.
bench-json:
	$(GO) run ./cmd/geobench -quick -json BENCH_baseline.json

# Regression gate: run a fresh quick snapshot and diff it against the
# committed baseline. Fails when any experiment slowed down >15%
# (experiments under the 25ms noise floor are exempt).
bench-diff:
	$(GO) run ./cmd/geobench -quick -json BENCH_new.json
	$(GO) run ./cmd/geobench -compare BENCH_baseline.json BENCH_new.json

# End-to-end smoke: boot geostatd, drive one KDV request, and assert the
# observability surfaces answer with well-formed output (Prometheus text
# at /metrics, a span tree at /debug/trace/last).
smoke:
	$(GO) build -o /tmp/geostatd.smoke ./cmd/geostatd
	@/tmp/geostatd.smoke -addr 127.0.0.1:18091 & pid=$$!; \
	trap "kill $$pid 2>/dev/null" EXIT; \
	ok=0; for i in $$(seq 1 50); do \
	  curl -fs http://127.0.0.1:18091/healthz >/dev/null 2>&1 && { ok=1; break; }; sleep 0.1; \
	done; \
	[ $$ok = 1 ] || { echo "geostatd did not come up"; exit 1; }; \
	curl -fs -X POST 'http://127.0.0.1:18091/v1/generate?name=smoke&kind=clusters&n=500&seed=1' >/dev/null && \
	curl -fs 'http://127.0.0.1:18091/v1/kdv?dataset=smoke&bandwidth=8&width=32&height=32' >/dev/null && \
	curl -fs http://127.0.0.1:18091/metrics | grep -q '# TYPE geostatd_request_seconds histogram' && \
	curl -fs http://127.0.0.1:18091/metrics | grep -q 'geostatd_requests_total{tool="kdv"} 1' && \
	curl -fs http://127.0.0.1:18091/debug/trace/last | grep -q 'kdv.compute' && \
	echo "smoke OK"

# Load-test smoke + SLO gate: boot geostatd, replay the deterministic
# smoke scenario with geoload, then judge the artifact with geogate —
# absolute SLO bounds from scenarios/smoke_slo.json plus drift against
# the committed LOAD_baseline.json. The baseline threshold is loose
# (+200%, 200ms noise floor) because CI wall clock is shared-runner
# noise; the SLO file carries the hard bounds. Regenerate the baseline
# with `make load-baseline` on quiet hardware when the perf profile
# changes.
load-smoke:
	$(GO) build -o /tmp/geostatd.load ./cmd/geostatd
	$(GO) build -o /tmp/geoload ./cmd/geoload
	$(GO) build -o /tmp/geogate ./cmd/geogate
	@/tmp/geostatd.load -addr 127.0.0.1:18092 & pid=$$!; \
	trap "kill $$pid 2>/dev/null" EXIT; \
	ok=0; for i in $$(seq 1 50); do \
	  curl -fs http://127.0.0.1:18092/healthz >/dev/null 2>&1 && { ok=1; break; }; sleep 0.1; \
	done; \
	[ $$ok = 1 ] || { echo "geostatd did not come up"; exit 1; }; \
	/tmp/geoload -scenario scenarios/smoke.yaml -base http://127.0.0.1:18092 -out LOAD_smoke.json && \
	/tmp/geogate -artifact LOAD_smoke.json -slo scenarios/smoke_slo.json \
	  -baseline LOAD_baseline.json -threshold 2.0 -min-ms 200 && \
	echo "load-smoke OK"

# Sharded-execution smoke: boot TWO real geostatd workers, fan a KDV
# computation out over them with geoshard, and assert (a) the merged
# raster is byte-identical to the committed digest — the bit-for-bit
# determinism claim, end to end over real HTTP — and (b) the workers'
# /metrics show tile-windowed requests were actually served
# (shard_tiles_total > 0, i.e. the run really was sharded).
SHARD_WORKERS = http://127.0.0.1:18094,http://127.0.0.1:18095
define SHARD_RUN
	/tmp/geogen.shard -kind clusters -n 2000 -seed 7 -out /tmp/shard_events.csv && \
	/tmp/geoshard -workers $(SHARD_WORKERS) -in /tmp/shard_events.csv \
	  -name smoke -tool kdv -kernel quartic -bandwidth 8 -width 64 -height 64 \
	  -bbox 0,0,100,100 -tile 4x4 -out /tmp/shard_out.json
endef

shard-smoke:
	$(GO) build -o /tmp/geostatd.shard ./cmd/geostatd
	$(GO) build -o /tmp/geoshard ./cmd/geoshard
	$(GO) build -o /tmp/geogen.shard ./cmd/geogen
	@/tmp/geostatd.shard -addr 127.0.0.1:18094 & p1=$$!; \
	/tmp/geostatd.shard -addr 127.0.0.1:18095 & p2=$$!; \
	trap "kill $$p1 $$p2 2>/dev/null" EXIT; \
	ok=0; for i in $$(seq 1 50); do \
	  curl -fs http://127.0.0.1:18094/healthz >/dev/null 2>&1 && \
	  curl -fs http://127.0.0.1:18095/healthz >/dev/null 2>&1 && { ok=1; break; }; sleep 0.1; \
	done; \
	[ $$ok = 1 ] || { echo "workers did not come up"; exit 1; }; \
	$(SHARD_RUN) || exit 1; \
	sum=$$(sha256sum /tmp/shard_out.json | awk '{print $$1}'); \
	want=$$(cat scenarios/shard_smoke.sha256); \
	[ "$$sum" = "$$want" ] || { echo "merged output digest $$sum != committed $$want"; exit 1; }; \
	t1=$$(curl -fs http://127.0.0.1:18094/metrics | awk '/^shard_tiles_total/ {print $$2}'); \
	t2=$$(curl -fs http://127.0.0.1:18095/metrics | awk '/^shard_tiles_total/ {print $$2}'); \
	[ $$(( $${t1:-0} + $${t2:-0} )) -gt 0 ] || { echo "workers served no tile windows"; exit 1; }; \
	echo "shard-smoke OK (tiles served: $${t1:-0}+$${t2:-0})"

# Regenerate the committed shard-smoke digest after an intentional change
# to the merged-output format or the generator.
shard-baseline:
	$(GO) build -o /tmp/geostatd.shard ./cmd/geostatd
	$(GO) build -o /tmp/geoshard ./cmd/geoshard
	$(GO) build -o /tmp/geogen.shard ./cmd/geogen
	@/tmp/geostatd.shard -addr 127.0.0.1:18094 & p1=$$!; \
	/tmp/geostatd.shard -addr 127.0.0.1:18095 & p2=$$!; \
	trap "kill $$p1 $$p2 2>/dev/null" EXIT; \
	ok=0; for i in $$(seq 1 50); do \
	  curl -fs http://127.0.0.1:18094/healthz >/dev/null 2>&1 && \
	  curl -fs http://127.0.0.1:18095/healthz >/dev/null 2>&1 && { ok=1; break; }; sleep 0.1; \
	done; \
	[ $$ok = 1 ] || { echo "workers did not come up"; exit 1; }; \
	$(SHARD_RUN) || exit 1; \
	sha256sum /tmp/shard_out.json | awk '{print $$1}' > scenarios/shard_smoke.sha256 && \
	echo "wrote scenarios/shard_smoke.sha256"

# Regenerate the committed load baseline from a fresh smoke run.
load-baseline:
	$(GO) build -o /tmp/geostatd.load ./cmd/geostatd
	$(GO) build -o /tmp/geoload ./cmd/geoload
	@/tmp/geostatd.load -addr 127.0.0.1:18093 & pid=$$!; \
	trap "kill $$pid 2>/dev/null" EXIT; \
	ok=0; for i in $$(seq 1 50); do \
	  curl -fs http://127.0.0.1:18093/healthz >/dev/null 2>&1 && { ok=1; break; }; sleep 0.1; \
	done; \
	[ $$ok = 1 ] || { echo "geostatd did not come up"; exit 1; }; \
	/tmp/geoload -scenario scenarios/smoke.yaml -base http://127.0.0.1:18093 -out LOAD_baseline.json && \
	echo "wrote LOAD_baseline.json"
