GO ?= go

# Everything runs under the race detector: the parallel engine owns all
# goroutines, so any package may fan out.
RACE_PKGS = ./...

.PHONY: check vet build test race lint fuzz-smoke bench

check: vet build test race lint

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# geolint: the project-specific analyzers (see internal/lint). Exits
# non-zero on any diagnostic; suppress individual findings with
# //lint:allow <analyzer> <reason>.
lint:
	$(GO) run ./cmd/geolint ./...

# Short fuzz runs of every parser, seeded from the committed corpora
# under */testdata/fuzz. ~10s per target.
fuzz-smoke:
	$(GO) test ./internal/geojson -run '^$$' -fuzz FuzzParse -fuzztime 10s
	$(GO) test ./internal/dataset -run '^$$' -fuzz FuzzReadCSV -fuzztime 10s
	$(GO) test ./internal/network -run '^$$' -fuzz FuzzReadEdgeCSV -fuzztime 10s

bench:
	$(GO) test -run NONE -bench . -benchmem .
