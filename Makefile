GO ?= go

# Packages whose concurrency is exercised under the race detector: the
# parallel engine itself plus every package migrated onto it.
RACE_PKGS = ./internal/parallel ./internal/moran ./internal/getisord \
            ./internal/kfunc ./internal/weights ./internal/kriging \
            ./internal/nkdv ./internal/stkdv ./internal/kde ./internal/idw .

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run NONE -bench . -benchmem .
