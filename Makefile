GO ?= go

# Everything runs under the race detector: the parallel engine owns all
# goroutines, so any package may fan out — including internal/serve,
# whose httptest suite drives concurrent cache and registry access.
RACE_PKGS = ./...

# Coverage ratchet: `make cover` fails if total statement coverage drops
# below this. Raise it when coverage improves; never lower it.
COVER_RATCHET = 80.0

.PHONY: check vet build test race lint cover fuzz-smoke bench

check: vet build test race lint

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# geolint: the project-specific analyzers (see internal/lint). Exits
# non-zero on any diagnostic; suppress individual findings with
# //lint:allow <analyzer> <reason>.
lint:
	$(GO) run ./cmd/geolint ./...

cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (ratchet: $(COVER_RATCHET)%)"; \
	awk -v t=$$total -v r=$(COVER_RATCHET) 'BEGIN { exit t+0 < r+0 ? 1 : 0 }' || \
	{ echo "coverage $$total% is below the ratchet $(COVER_RATCHET)%"; exit 1; }

# Short fuzz runs of every parser, seeded from the committed corpora
# under */testdata/fuzz. ~10s per target.
fuzz-smoke:
	$(GO) test ./internal/geojson -run '^$$' -fuzz FuzzParse -fuzztime 10s
	$(GO) test ./internal/dataset -run '^$$' -fuzz FuzzReadCSV -fuzztime 10s
	$(GO) test ./internal/network -run '^$$' -fuzz FuzzReadEdgeCSV -fuzztime 10s

bench:
	$(GO) test -run NONE -bench . -benchmem .
