package geostat

// Benchmarks for the extension features, mapped to the ablation experiments:
//
//	A1 -> BenchmarkKDVMultiBandwidth    A2 -> BenchmarkKDVAdaptive
//	A3 -> BenchmarkNKDVEqualSplit       streaming -> BenchmarkKDVStream
//	cross-K/Knox/Geary/contour -> their own families below

import (
	"fmt"
	"math/rand"
	"testing"
)

// A1: m bandwidths — independent support scans vs the shared one-pass.
func BenchmarkKDVMultiBandwidth(b *testing.B) {
	pts := benchPoints(30000)
	grid := NewPixelGrid(benchBox, 128, 128)
	bw := []float64{9, 11, 13, 15}
	b.Run("independent-cutoff-x4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, bb := range bw {
				if _, err := KDV(pts, KDVOptions{
					Kernel: MustKernel(Quartic, bb), Grid: grid, Method: KDVGridCutoff,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("shared-one-pass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := KDVMultiBandwidth(pts, grid, Quartic, bw, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// A2: adaptive KDV (per-point bandwidths) vs fixed.
func BenchmarkKDVAdaptive(b *testing.B) {
	pts := benchPoints(20000)
	grid := NewPixelGrid(benchBox, 128, 128)
	bw, err := AdaptiveBandwidths(pts, 16, 1.0, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := KDV(pts, KDVOptions{Kernel: MustKernel(Quartic, 6), Grid: grid}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := KDVAdaptive(pts, bw, Quartic, grid, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pilot-bandwidths", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := AdaptiveBandwidths(pts, 16, 1.0, 1.0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Streaming: per-event incremental update vs full batch recomputation.
func BenchmarkKDVStream(b *testing.B) {
	pts := benchPoints(5000)
	grid := NewPixelGrid(benchBox, 128, 128)
	k := MustKernel(Quartic, 6)
	b.Run("batch-recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := KDV(pts, KDVOptions{Kernel: k, Grid: grid}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental-add-remove", func(b *testing.B) {
		s, err := NewKDVStream(k, grid)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			s.Add(p)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pts[i%len(pts)]
			s.Remove(p)
			s.Add(p)
		}
	})
}

// A3: plain vs equal-split network kernels.
func BenchmarkNKDVEqualSplit(b *testing.B) {
	g := GridNetwork(10, 10, 10, Point{})
	events := RandomNetworkEvents(g, 800, 1)
	opt := NKDVOptions{Kernel: MustKernel(Epanechnikov, 15), LixelLength: 1}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NKDV(g, events, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("equal-split", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NKDVEqualSplit(g, events, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Bivariate K and the Knox space-time screen.
func BenchmarkCrossK(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	a := UniformCSR(r, 20000, benchBox).Points()
	bb := UniformCSR(r, 2000, benchBox).Points()
	thresholds := []float64{1, 2, 4, 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CrossKFunctionCurve(a, bb, thresholds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKnox(b *testing.B) {
	d := benchSTData(5000)
	r := rand.New(rand.NewSource(3))
	for _, perms := range []int{99, 999} {
		b.Run(fmt.Sprintf("perms=%d", perms), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := KnoxTest(d.Points(), d.Times(), 4, 8, perms, 1, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGeary(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	d := UniformCSR(r, 5000, benchBox)
	WithField(r, d, func(p Point) float64 { return p.X }, 1)
	w, err := KNNWeights(d.Points(), 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GearyC(d.Values(), w, 99, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContour(b *testing.B) {
	pts := benchPoints(10000)
	hm, err := KDV(pts, KDVOptions{Kernel: MustKernel(Quartic, 6), Grid: NewPixelGrid(benchBox, 256, 256)})
	if err != nil {
		b.Fatal(err)
	}
	_, _, peak := hm.ArgMax()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if segs := hm.Contour(peak / 2); len(segs) == 0 {
			b.Fatal("no contour")
		}
	}
}

// Bandwidth selection cost.
func BenchmarkBandwidthSelection(b *testing.B) {
	pts := benchPoints(3000)
	b.Run("silverman", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SilvermanBandwidth(pts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cv-3-candidates", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SelectBandwidthCV(pts, Quartic, []float64{3, 6, 12}, 4, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}
