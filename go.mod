module geostat

go 1.22
