package geostat

import (
	"math"
	"math/rand"
	"testing"
)

// These tests exercise the public facade end-to-end: every tool of the
// paper's Table 1 plus the KDV/K-function variants, through the exported
// API only. Algorithm-level correctness lives in the internal packages'
// own suites; here we check the wiring, option handling and headline
// behaviours.

var box = BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

func hotspotData(seed int64, n int) *Dataset {
	r := rand.New(rand.NewSource(seed))
	return GaussianClusters(r, n, box, []GaussianCluster{
		{Center: Point{X: 30, Y: 60}, Sigma: 5, Weight: 1},
	}, 0.2)
}

func TestKDVMethodsAgree(t *testing.T) {
	d := hotspotData(1, 500)
	grid := NewPixelGrid(box, 32, 32)
	base := KDVOptions{Kernel: MustKernel(Quartic, 10), Grid: grid}

	exact, err := KDV(d.Points(), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []KDVMethod{KDVNaive, KDVGridCutoff, KDVSweepLine} {
		opt := base
		opt.Method = m
		got, err := KDV(d.Points(), opt)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		diff, _ := got.MaxAbsDiff(exact)
		_, peak := exact.MinMax()
		if diff > 1e-9*(1+peak) {
			t.Errorf("%v differs from auto by %v", m, diff)
		}
	}
	opt := base
	opt.Method = KDVBoundApprox
	opt.Epsilon = 0.05
	approx, err := KDV(d.Points(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range approx.Values {
		f := exact.Values[i]
		if approx.Values[i] < 0.95*f-1e-9 || approx.Values[i] > 1.05*f+1e-9 {
			t.Fatalf("bound approx outside (1±ε)F at pixel %d", i)
		}
	}
	opt.Method = KDVSampled
	opt.Epsilon, opt.Delta = 0.05, 0.05
	opt.Seed = 2
	if _, err := KDV(d.Points(), opt); err != nil {
		t.Fatal(err)
	}
	opt.Method = KDVMethod(99)
	if _, err := KDV(d.Points(), opt); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestKDVMethodNames(t *testing.T) {
	names := map[KDVMethod]string{
		KDVAuto: "auto", KDVNaive: "naive", KDVGridCutoff: "grid-cutoff",
		KDVSweepLine: "sweep-line", KDVBoundApprox: "bound-approx", KDVSampled: "sampled",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if KDVMethod(42).String() == "" {
		t.Error("unknown method String empty")
	}
	if !SweepLineSupports(Quartic) || SweepLineSupports(Gaussian) {
		t.Error("SweepLineSupports wrong")
	}
}

func TestKernelFacade(t *testing.T) {
	if _, err := NewKernel(Gaussian, -1); err == nil {
		t.Error("bad kernel accepted")
	}
	kt, err := ParseKernel("epanechnikov")
	if err != nil || kt != Epanechnikov {
		t.Errorf("ParseKernel = %v, %v", kt, err)
	}
	if len(AllKernels()) != 8 {
		t.Errorf("AllKernels = %d", len(AllKernels()))
	}
}

func TestKFunctionFacade(t *testing.T) {
	d := hotspotData(3, 300)
	s := 8.0
	if KFunction(d.Points(), s) != KFunctionNaive(d.Points(), s) {
		t.Error("indexed and naive K disagree")
	}
	curve, err := KFunctionCurve(d.Points(), []float64{2, 4, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if curve[2] != KFunction(d.Points(), 8) {
		t.Error("curve disagrees with single threshold")
	}
	rng := rand.New(rand.NewSource(4))
	plot, err := KFunctionPlot(d.Points(), KPlotOptions{
		Thresholds:  []float64{4, 8, 12},
		Simulations: 19,
		Window:      box,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if plot.RegimeAt(0) != RegimeClustered {
		t.Errorf("hotspot data regime = %v, want clustered", plot.RegimeAt(0))
	}
	kHat := KEstimate(curve[2], d.N(), box.Area())
	if kHat <= 0 {
		t.Errorf("KEstimate = %v", kHat)
	}
	if l := BesagL(kHat); l <= 0 {
		t.Errorf("BesagL = %v", l)
	}
	if _, _, ok := KFunctionBorderCorrected(d.Points(), 10, box); !ok {
		t.Error("border corrected failed")
	}
}

func TestNetworkFacade(t *testing.T) {
	g := GridNetwork(6, 6, 10, Point{})
	events := ClusteredNetworkEvents(g, 150, 2, 4, 5)
	opt := NKDVOptions{Kernel: MustKernel(Epanechnikov, 10), LixelLength: 3}
	fast, err := NKDV(g, events, opt)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NKDVNaive(g, events, opt)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := fast.MaxAbsDiff(slow); diff > 1e-9 {
		t.Errorf("NKDV methods differ by %v", diff)
	}
	th := []float64{5, 10, 20}
	curve, err := NetworkKFunctionCurve(g, events, th, 0)
	if err != nil {
		t.Fatal(err)
	}
	if curve[1] != NetworkKFunction(g, events, 10) {
		t.Error("network curve vs single disagree")
	}
	plot, err := NetworkKFunctionPlot(g, events, th, 9, 0, NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(plot.K) != 3 {
		t.Errorf("plot size %d", len(plot.K))
	}
	// Snap round-trip.
	pos, dist := SnapToNetwork(g, Point{X: 11, Y: 19.5})
	if dist > 1.01 {
		t.Errorf("snap distance %v", dist)
	}
	_ = pos
	if RandomNetworkEvents(g, 10, 6)[0].Edge < 0 {
		t.Error("random event bad edge")
	}
	if RingRadialNetwork(2, 6, 5, Point{}).NumNodes() != 13 {
		t.Error("ring-radial node count")
	}
}

func TestSTKDVFacade(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	d := SpatioTemporalOutbreak(r, 400, box, 0, 50, []OutbreakWave{
		{Center: Point{X: 20, Y: 20}, Sigma: 4, TimeMean: 10, TimeSigma: 3, Weight: 1},
		{Center: Point{X: 80, Y: 80}, Sigma: 4, TimeMean: 40, TimeSigma: 3, Weight: 1},
	}, 0.1)
	opt := STKDVOptions{
		SpaceKernel: MustKernel(Quartic, 10),
		TimeKernel:  MustKernel(Epanechnikov, 6),
		Grid:        NewPixelGrid(box, 20, 20),
		Times:       []float64{10, 40},
	}
	shared, err := STKDV(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := STKDVNaive(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := shared.MaxAbsDiff(naive); diff > 1e-9 {
		t.Errorf("STKDV methods differ by %v", diff)
	}
	// Spatiotemporal K-function wiring.
	if _, err := STKFunctionSurface(d.Points(), d.Times(), []float64{5, 10}, []float64{5, 10}, 0); err != nil {
		t.Fatal(err)
	}
	if STKFunction(d.Points(), d.Times(), 10, 10) <= 0 {
		t.Error("STKFunction zero on clustered data")
	}
	if _, err := STKFunctionPlot(d, []float64{5}, []float64{5}, 5, 0, r); err != nil {
		t.Fatal(err)
	}
}

func TestInterpolationFacade(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := UniformCSR(r, 500, box)
	WithField(r, d, func(p Point) float64 { return p.X/10 + math.Sin(p.Y/15) }, 0.05)
	grid := NewPixelGrid(box, 16, 16)

	naive, err := IDW(d, IDWOptions{Grid: grid, Power: 2})
	if err != nil {
		t.Fatal(err)
	}
	knn, err := IDWKNN(d, IDWOptions{Grid: grid, Power: 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	radius, err := IDWRadius(d, IDWOptions{Grid: grid, Power: 2}, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*Heatmap{naive, knn, radius} {
		lo, hi := h.MinMax()
		if math.IsNaN(lo) || math.IsNaN(hi) {
			t.Fatal("IDW produced NaN")
		}
	}

	bins, err := EmpiricalVariogram(d, 30, 12)
	if err != nil {
		t.Fatal(err)
	}
	v, err := FitVariogram(bins, SphericalModel)
	if err != nil {
		t.Fatal(err)
	}
	kr, err := Krige(d, KrigingOptions{Grid: grid, Variogram: v, Neighbors: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Kriging and IDW should broadly agree on a smooth field.
	diff, _ := kr.MaxAbsDiff(knn)
	if diff > 3 {
		t.Errorf("kriging vs IDW diff %v", diff)
	}
}

func TestAutocorrelationFacade(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	d := UniformCSR(r, 400, box)
	WithField(r, d, func(p Point) float64 { return p.X + p.Y }, 1)

	w, err := KNNWeights(d.Points(), 8)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := MoranI(d.Values(), w, 99, r)
	if err != nil {
		t.Fatal(err)
	}
	if mi.I < 0.5 {
		t.Errorf("gradient Moran I = %v", mi.I)
	}
	if _, err := LocalMoran(d.Values(), w, 0, nil); err != nil {
		t.Fatal(err)
	}
	wb, err := DistanceBandWeights(d.Points(), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Shift values positive for General G.
	pos := make([]float64, len(d.Values()))
	for i, v := range d.Values() {
		pos[i] = v + 10
	}
	gg, err := GeneralG(pos, wb, 99, 11)
	if err != nil {
		t.Fatal(err)
	}
	if gg.G <= 0 {
		t.Errorf("GeneralG = %v", gg.G)
	}
	if _, err := LocalGStar(pos, wb); err != nil {
		t.Fatal(err)
	}
}

func TestClusteringFacade(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	d := GaussianClusters(r, 600, box, []GaussianCluster{
		{Center: Point{X: 20, Y: 20}, Sigma: 2, Weight: 1},
		{Center: Point{X: 80, Y: 80}, Sigma: 2, Weight: 1},
	}, 0)
	labels, err := DBSCAN(d.Points(), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if NumClusters(labels) != 2 {
		t.Errorf("DBSCAN clusters = %d", NumClusters(labels))
	}
	slow, err := DBSCANNaive(d.Points(), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if NumClusters(slow) != 2 {
		t.Errorf("naive DBSCAN clusters = %d", NumClusters(slow))
	}
	km, err := KMeans(d.Points(), 2, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(km.Centers) != 2 {
		t.Errorf("KMeans centers = %d", len(km.Centers))
	}
}

func TestDataFacade(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	m := MaternCluster(r, box, 0.003, 20, 5)
	if m.N() == 0 {
		t.Error("Matérn empty")
	}
	disp := Dispersed(r, 100, box, 5)
	if disp.N() != 100 {
		t.Error("Dispersed size")
	}
	if NewBBox(disp.Points()).IsEmpty() {
		t.Error("bbox empty")
	}
	fp := FromPoints(disp.Points())
	if fp.N() != 100 {
		t.Error("FromPoints size")
	}
}
